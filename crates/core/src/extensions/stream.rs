//! Sustained-load streaming workload — the telemetry-driving sibling of
//! [`online`](crate::extensions::online).
//!
//! Where `simulate_online` answers "what is the blocking ratio of this
//! workload", this module answers "what does the run look like *while
//! it happens*": the same admit/hold/release session model, but with a
//! trace-realistic arrival process and full streaming instrumentation:
//!
//! * **diurnal modulation** — the per-slot arrival probability follows
//!   `base · (1 + amplitude · sin(2π · slot / period))`, clamped to
//!   `[0, 1]`, so load sweeps through quiet troughs and saturating
//!   peaks within one run;
//! * **heavy-tailed group sizes** — sizes are drawn from a truncated
//!   power law (`P(k) ∝ k^-alpha` over the configured range): mostly
//!   pairs, occasionally large groups that stress capacity;
//! * **hot-spot user regions** — a configurable fraction of users (by
//!   network order) is oversampled by a weight factor, concentrating
//!   contention the way real tenant populations do.
//!
//! Every slot feeds a [`TimeSeries`]: arrival/admission/block rates,
//! active-session / free-qubit / cache-hit-rate gauges, and a
//! per-window admission-latency histogram. Latency is measured in
//! **finder searches per admission decision** (the
//! [`ChannelFinderCache::search_count`] delta), not wall-clock — the
//! repo's deterministic latency proxy, byte-identical across machines
//! and thread counts.
//!
//! `Blocked` decision points are sampled 1-in-N through a
//! [`TraceSampler`] so a long saturated run cannot flood the flight
//! recorder; the sampler's cadence is consulted on every block
//! regardless of obs level, so [`StreamStats::sampled_out`] is
//! deterministic for a given seed.
//!
//! The workload itself is **open-loop**: [`RequestStream`] is a seeded
//! iterator of [`Request`]s — arrival slot, members, hold duration, and
//! [`SloClass`] all drawn up front, independent of admission outcomes —
//! so the identical offered load can be replayed through any consumer.
//! [`simulate_stream`] consumes it slot by slot (immediate per-request
//! admission); the batched admission service (`muerp-serve`) consumes
//! the same iterator in rounds. Because the stream is a pure function
//! of `(network, config, seed)`, the two consumers see bit-identical
//! request scripts — the property the serve differential battery rests
//! on.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use qnet_graph::NodeId;
use qnet_obs::{TimeSeries, TimeSeriesConfig, TimeSeriesSection, TraceSampler};

use crate::algorithms::{CacheEfficiency, ChannelFinderCache};
use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;
use crate::tree::EntanglementTree;

/// Workload, service, and telemetry parameters of a streaming run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Total virtual-time slots to simulate.
    pub slots: u64,
    /// Time-series window width in slots.
    pub window_slots: u64,
    /// Mean per-slot arrival probability (the diurnal baseline).
    pub base_arrival: f64,
    /// Relative swing of the diurnal cycle, in `[0, 1]`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal cycle in slots.
    pub diurnal_period: u64,
    /// Inclusive range of requested group sizes.
    pub group_size: (usize, usize),
    /// Power-law exponent of the group-size distribution
    /// (`P(k) ∝ k^-alpha`; 0 = uniform).
    pub group_alpha: f64,
    /// Inclusive range of session durations in slots.
    pub hold_slots: (u64, u64),
    /// Fraction of users (by network order) forming the hot region.
    pub hotspot_fraction: f64,
    /// Sampling weight of a hot-region user relative to a cold one
    /// (≥ 1).
    pub hotspot_weight: f64,
    /// Trace-sampling period: every N-th `Blocked` decision point is
    /// admitted to the flight recorder.
    pub sample_every: u64,
    /// Capacity-churn period in slots: every N-th slot a random switch
    /// loses [`churn_qubits`](Self::churn_qubits) free qubits for
    /// [`churn_hold`](Self::churn_hold) slots (maintenance windows,
    /// calibration downtime). `0` disables churn. Churn draws from its
    /// own RNG stream, so enabling it never perturbs the base workload.
    #[serde(default)]
    pub churn_every: u64,
    /// Qubits withdrawn per churn event (capped at the switch's free
    /// count so the later restore is exact).
    #[serde(default = "default_churn_qubits")]
    pub churn_qubits: u32,
    /// Slots a churn withdrawal lasts before the qubits are granted
    /// back.
    #[serde(default = "default_churn_hold")]
    pub churn_hold: u64,
}

fn default_churn_qubits() -> u32 {
    2
}

fn default_churn_hold() -> u64 {
    64
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            slots: 2048,
            window_slots: 64,
            base_arrival: 0.35,
            diurnal_amplitude: 0.6,
            diurnal_period: 512,
            group_size: (2, 5),
            group_alpha: 1.8,
            hold_slots: (5, 20),
            hotspot_fraction: 0.3,
            hotspot_weight: 4.0,
            sample_every: 8,
            churn_every: 0,
            churn_qubits: default_churn_qubits(),
            churn_hold: default_churn_hold(),
        }
    }
}

impl StreamConfig {
    /// Panics on out-of-range parameters; every stream consumer
    /// ([`simulate_stream`], [`RequestStream`], the serve engine) calls
    /// this before drawing anything.
    pub fn validate(&self) {
        assert!(self.slots >= 1, "a stream needs at least one slot");
        assert!(
            self.window_slots >= 1,
            "windows must span at least one slot"
        );
        assert!(
            (0.0..=1.0).contains(&self.base_arrival),
            "base arrival probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.diurnal_amplitude),
            "diurnal amplitude must be in [0, 1]"
        );
        assert!(self.diurnal_period >= 1, "diurnal period must be positive");
        assert!(
            2 <= self.group_size.0 && self.group_size.0 <= self.group_size.1,
            "group sizes must satisfy 2 ≤ min ≤ max"
        );
        assert!(self.group_alpha >= 0.0, "group alpha must be non-negative");
        assert!(
            1 <= self.hold_slots.0 && self.hold_slots.0 <= self.hold_slots.1,
            "hold durations must satisfy 1 ≤ min ≤ max"
        );
        assert!(
            (0.0..=1.0).contains(&self.hotspot_fraction),
            "hotspot fraction must be in [0, 1]"
        );
        assert!(self.hotspot_weight >= 1.0, "hotspot weight must be ≥ 1");
        assert!(self.sample_every >= 1, "sampling period must be positive");
        if self.churn_every > 0 {
            assert!(self.churn_qubits >= 1, "churn must withdraw ≥ 1 qubit");
            assert!(self.churn_hold >= 1, "churn hold must be ≥ 1 slot");
        }
    }

    /// The diurnally modulated arrival probability at `slot`.
    pub fn arrival_at(&self, slot: u64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (slot % self.diurnal_period) as f64
            / self.diurnal_period as f64;
        (self.base_arrival * (1.0 + self.diurnal_amplitude * phase.sin())).clamp(0.0, 1.0)
    }
}

/// Service class of a request — the admission-priority tier the
/// weighted-fairness policy schedules by. Drawn per request from the
/// workload RNG (Gold 1/8, Silver 2/8, Bronze 5/8), so class mix is
/// part of the seeded script, not of the consumer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloClass {
    /// Highest tier (rarest, largest fairness weight).
    Gold,
    /// Middle tier.
    Silver,
    /// Default tier (most requests).
    Bronze,
}

impl SloClass {
    /// All classes, Gold first — index order matches [`SloClass::index`].
    pub const ALL: [SloClass; 3] = [SloClass::Gold, SloClass::Silver, SloClass::Bronze];

    /// Stable display name (fixtures and CSV keys use this).
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Gold => "gold",
            SloClass::Silver => "silver",
            SloClass::Bronze => "bronze",
        }
    }

    /// Parses [`SloClass::name`] back.
    pub fn parse(name: &str) -> Option<SloClass> {
        SloClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Dense index into per-class arrays (Gold 0, Silver 1, Bronze 2).
    pub fn index(self) -> usize {
        match self {
            SloClass::Gold => 0,
            SloClass::Silver => 1,
            SloClass::Bronze => 2,
        }
    }

    fn draw(rng: &mut StdRng) -> SloClass {
        match rng.random_range(0..8u32) {
            0 => SloClass::Gold,
            1 | 2 => SloClass::Silver,
            _ => SloClass::Bronze,
        }
    }
}

/// One admission request of the seeded open-loop workload: everything
/// about it — when it arrives, who wants entanglement, how long the
/// session would hold, and its service class — is fixed at draw time,
/// before any admission decision is made.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Sequential id in arrival order (0-based).
    pub id: u64,
    /// Arrival slot.
    pub slot: u64,
    /// The distinct users requesting a shared entanglement group.
    pub members: Vec<NodeId>,
    /// Session duration in slots, counted from the admission decision.
    pub hold: u64,
    /// Service class for policy scheduling.
    pub class: SloClass,
}

/// The seeded open-loop request iterator: at most one arrival per slot
/// (Bernoulli on [`StreamConfig::arrival_at`]), heavy-tailed group
/// sizes, hot-spot-weighted members drawn from *all* users, hold and
/// [`SloClass`] drawn at arrival. Ends after
/// [`StreamConfig::slots`] slots.
///
/// A pure function of `(users, config, seed)`: iterating twice yields
/// identical scripts, which is what lets `simulate_stream` and the
/// batched serve engine consume the very same offered load.
pub struct RequestStream {
    cfg: StreamConfig,
    users: Vec<(usize, NodeId)>,
    hot_count: usize,
    rng: StdRng,
    slot: u64,
    next_id: u64,
}

impl RequestStream {
    /// Builds the request stream for `net`'s user population.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range configuration or when the network has
    /// fewer users than the minimum group size.
    pub fn new(net: &QuantumNetwork, cfg: StreamConfig, seed: u64) -> Self {
        cfg.validate();
        assert!(
            net.user_count() >= cfg.group_size.0,
            "network has {} users, groups need at least {}",
            net.user_count(),
            cfg.group_size.0
        );
        let users: Vec<(usize, NodeId)> = net.users().iter().copied().enumerate().collect();
        let hot_count = (cfg.hotspot_fraction * users.len() as f64).ceil() as usize;
        RequestStream {
            cfg,
            users,
            hot_count,
            rng: StdRng::seed_from_u64(seed),
            slot: 0,
            next_id: 0,
        }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        while self.slot < self.cfg.slots {
            let now = self.slot;
            self.slot += 1;
            if !self.rng.random_bool(self.cfg.arrival_at(now)) {
                continue;
            }
            let size = sample_group_size(&mut self.rng, self.cfg.group_size, self.cfg.group_alpha);
            let members = sample_members(
                &mut self.rng,
                &self.users,
                size,
                self.hot_count,
                self.cfg.hotspot_weight,
            );
            let hold = self
                .rng
                .random_range(self.cfg.hold_slots.0..=self.cfg.hold_slots.1);
            let class = SloClass::draw(&mut self.rng);
            let id = self.next_id;
            self.next_id += 1;
            return Some(Request {
                id,
                slot: now,
                members,
                hold,
                class,
            });
        }
        None
    }
}

/// Aggregate statistics of one streaming run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamStats {
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests admitted (routed successfully).
    pub admitted: u64,
    /// Requests blocked because a requested member was already in an
    /// active session.
    pub blocked_no_users: u64,
    /// Requests blocked because no capacity-respecting tree existed.
    pub blocked_capacity: u64,
    /// Mean entanglement rate over admitted sessions.
    pub mean_session_rate: f64,
    /// Mean number of concurrently active sessions (per slot).
    pub mean_active_sessions: f64,
    /// Peak concurrent sessions.
    pub peak_active_sessions: usize,
    /// Finder searches executed over the whole run.
    pub total_searches: u64,
    /// `Blocked` decision points dropped by the trace sampler.
    pub sampled_out: u64,
    /// Capacity-churn events injected (0 when churn is disabled).
    pub churn_events: u64,
    /// Finder-cache hit/refresh/fill/repair tallies over the run.
    pub cache: CacheEfficiency,
}

impl StreamStats {
    /// Total blocked requests (either reason).
    pub fn blocked(&self) -> u64 {
        self.blocked_no_users + self.blocked_capacity
    }

    /// Fraction of arrived requests that were blocked.
    pub fn blocking_ratio(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.blocked() as f64 / self.arrived as f64
        }
    }
}

/// Everything a streaming run produces: the run-level totals and the
/// windowed time series.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamOutcome {
    /// Run-level aggregate statistics.
    pub stats: StreamStats,
    /// The frozen per-window series (no windows are evicted: the ring
    /// is sized to hold the whole run).
    pub series: TimeSeriesSection,
}

struct Session {
    tree: EntanglementTree,
    expires_at: u64,
    members: Vec<NodeId>,
}

/// Runs the streaming workload for [`StreamConfig::slots`] slots,
/// consuming the open-loop [`RequestStream`] one request at a time.
///
/// Deterministic for a given `seed`: the virtual clock, the RNG, and
/// the search-count latency proxy are all independent of wall-clock
/// and thread count (admission routing is sequential by design).
///
/// # Panics
///
/// Panics on out-of-range configuration or when the network has fewer
/// users than the minimum group size.
pub fn simulate_stream(net: &QuantumNetwork, cfg: StreamConfig, seed: u64) -> StreamOutcome {
    // The offered load: a pure function of (net, cfg, seed), drawn
    // entirely from its own RNG so admission outcomes can never feed
    // back into arrivals, sizes, members, holds, or classes.
    let mut requests = RequestStream::new(net, cfg, seed).peekable();
    // Churn draws from its own stream so the base workload is
    // bit-identical with churn on or off.
    let mut churn_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut capacity = CapacityMap::new(net);
    let mut cache = ChannelFinderCache::new(net);
    let mut sampler = TraceSampler::every(cfg.sample_every);
    let mut series = TimeSeries::new(TimeSeriesConfig {
        window_slots: cfg.window_slots,
        // Hold every window of the run: the section is the product
        // here, not a bounded diagnostic ring.
        capacity: (cfg.slots / cfg.window_slots + 2) as usize,
    });
    // Register the rate keys up front so every window — including
    // event-free ones before the first arrival — reports explicit
    // zeros.
    for key in [
        "arrivals",
        "admitted",
        "blocked_no_users",
        "blocked_capacity",
        "churn_events",
    ] {
        series.rate_add(key, 0);
    }

    let switches: Vec<NodeId> = net.switches().collect();
    // Outstanding churn withdrawals: (restore_at, switch, qubits).
    let mut maintenance: Vec<(u64, NodeId, u32)> = Vec::new();

    let mut active: Vec<Session> = Vec::new();
    let mut stats = StreamStats::default();
    let mut session_rate_sum = 0.0f64;
    let mut active_slot_sum = 0u64;

    for now in 0..cfg.slots {
        series.advance_to(now);

        // Departures first: free the qubits of expired sessions and let
        // the finder cache absorb the restores eagerly.
        apply_departures(&mut active, &mut capacity, &mut cache, now);

        // Capacity churn: restore expired withdrawals, then maybe take
        // a new switch down. Runs before the arrival so admission sees
        // the churned map — each withdraw/grant is a capacity delta the
        // finder cache absorbs incrementally.
        if cfg.churn_every > 0 {
            let mut due = Vec::new();
            maintenance.retain(|&(restore_at, node, qubits)| {
                if restore_at <= now {
                    due.push((node, qubits));
                    false
                } else {
                    true
                }
            });
            for (node, qubits) in due {
                capacity.grant(node, qubits);
            }
            if now % cfg.churn_every == 0 && now > 0 && !switches.is_empty() {
                let victim = switches[churn_rng.random_range(0..switches.len())];
                let taken = cfg.churn_qubits.min(capacity.free(victim));
                capacity.withdraw(victim, taken);
                maintenance.push((now + cfg.churn_hold, victim, taken));
                stats.churn_events += 1;
                series.rate_add("churn_events", 1);
                qnet_obs::counter!("core.stream.churn_events");
            }
        }

        while requests.peek().is_some_and(|r| r.slot == now) {
            let req = requests.next().expect("peeked");
            stats.arrived += 1;
            series.rate_add("arrivals", 1);
            qnet_obs::counter!("core.stream.arrivals");
            let size = req.members.len();
            let busy: HashSet<NodeId> = active
                .iter()
                .flat_map(|s| s.members.iter().copied())
                .collect();
            if req.members.iter().any(|m| busy.contains(m)) {
                // Open-loop arrivals name their members up front, so a
                // request whose member is still in a session blocks —
                // the closed-loop "too few free users" reason is gone.
                stats.blocked_no_users += 1;
                series.rate_add("blocked_no_users", 1);
                qnet_obs::counter!("core.stream.blocked", reason = "no_users");
                emit_block(&mut sampler, "member-busy", size, now);
            } else {
                let before = cache.search_count();
                let routed = route_group_cached(net, &mut cache, &mut capacity, &req.members);
                let searches = cache.search_count() - before;
                series.latency("admission_searches", searches);
                qnet_obs::histogram!("core.stream.admission_searches", searches);
                match routed {
                    Some(tree) => {
                        stats.admitted += 1;
                        series.rate_add("admitted", 1);
                        qnet_obs::counter!("core.stream.admitted");
                        session_rate_sum += tree.rate().value();
                        active.push(Session {
                            tree,
                            expires_at: now + req.hold,
                            members: req.members,
                        });
                    }
                    None => {
                        stats.blocked_capacity += 1;
                        series.rate_add("blocked_capacity", 1);
                        qnet_obs::counter!("core.stream.blocked", reason = "capacity");
                        emit_block(&mut sampler, "capacity", size, now);
                    }
                }
            }
        }

        active_slot_sum += active.len() as u64;
        stats.peak_active_sessions = stats.peak_active_sessions.max(active.len());
        series.gauge("active_sessions", active.len() as f64);
        series.gauge("free_qubits", free_qubit_total(net, &capacity));
        series.gauge("cache_hit_rate", cache.efficiency().hit_rate());
    }

    stats.mean_session_rate = if stats.admitted == 0 {
        0.0
    } else {
        session_rate_sum / stats.admitted as f64
    };
    stats.mean_active_sessions = active_slot_sum as f64 / cfg.slots as f64;
    stats.total_searches = cache.search_count();
    stats.sampled_out = sampler.sampled_out();
    stats.cache = cache.efficiency();
    StreamOutcome {
        stats,
        series: series.finish(),
    }
}

/// Releases every expired session's channels and — when anything was
/// released — immediately absorbs the restored capacity into the finder
/// cache. Returns the number of departed sessions.
///
/// The eager [`ChannelFinderCache::absorb`] is the departure half of
/// the delta engine's restore-cancellation path: a departing group's
/// releases flip its relays back on, and absorbing that delta while it
/// is still adjacent to the kill cancels the pending repairs queued for
/// exactly those relays. Without it, the restore would ride along to
/// the next lookup, interleaved with whatever else changed by then, and
/// an unclassifiable improving flip escalates the entry to a full
/// recompute instead of an O(1) revalidation.
fn apply_departures(
    active: &mut Vec<Session>,
    capacity: &mut CapacityMap,
    cache: &mut ChannelFinderCache<'_>,
    now: u64,
) -> u64 {
    let before = active.len();
    let mut released = false;
    let mut kept = Vec::with_capacity(active.len());
    for session in active.drain(..) {
        if session.expires_at <= now {
            for c in &session.tree.channels {
                capacity.release(c);
            }
            released = true;
        } else {
            kept.push(session);
        }
    }
    *active = kept;
    if released {
        cache.absorb(capacity);
    }
    (before - active.len()) as u64
}

/// Consults the sampler on every block (so the cadence and the
/// `sampled_out` tally are level-independent) and records the admitted
/// ones when tracing is on.
fn emit_block(sampler: &mut TraceSampler, reason: &'static str, size: usize, now: u64) {
    if sampler.admit() && qnet_obs::trace_enabled() {
        qnet_obs::record_event(qnet_obs::TraceEvent::Blocked {
            reason,
            group_size: size as u32,
            at_slot: now,
        });
    }
}

/// Draws a group size from the truncated power law `P(k) ∝ k^-alpha`
/// over `[lo, hi]`.
fn sample_group_size(rng: &mut StdRng, (lo, hi): (usize, usize), alpha: f64) -> usize {
    if lo == hi {
        return lo;
    }
    let total: f64 = (lo..=hi).map(|k| (k as f64).powf(-alpha)).sum();
    let mut x = rng.random_range(0.0..total);
    for k in lo..=hi {
        let w = (k as f64).powf(-alpha);
        if x < w {
            return k;
        }
        x -= w;
    }
    hi
}

/// Weighted sampling of `size` members without replacement from the
/// candidate users: those whose network-order position is below
/// `hot_count` carry `hot_weight`, the rest weight 1.
fn sample_members(
    rng: &mut StdRng,
    candidates: &[(usize, NodeId)],
    size: usize,
    hot_count: usize,
    hot_weight: f64,
) -> Vec<NodeId> {
    let mut pool: Vec<(f64, NodeId)> = candidates
        .iter()
        .map(|&(pos, u)| (if pos < hot_count { hot_weight } else { 1.0 }, u))
        .collect();
    let mut members = Vec::with_capacity(size);
    for _ in 0..size {
        let total: f64 = pool.iter().map(|&(w, _)| w).sum();
        let mut x = rng.random_range(0.0..total);
        let mut pick = pool.len() - 1;
        for (i, &(w, _)) in pool.iter().enumerate() {
            if x < w {
                pick = i;
                break;
            }
            x -= w;
        }
        members.push(pool.swap_remove(pick).1);
    }
    members
}

/// Total free qubits across the network's switches.
fn free_qubit_total(net: &QuantumNetwork, capacity: &CapacityMap) -> f64 {
    net.switches().map(|s| capacity.free(s) as u64).sum::<u64>() as f64
}

/// Prim-style group routing over shared residual capacity, served
/// through the finder cache (epoch-keyed, so trial capacities never
/// alias); reserves the qubits on success, touches nothing on failure.
///
/// Public because the batched admission service (`muerp-serve`) routes
/// through the identical growth loop — any divergence between the two
/// consumers would void the serve differential battery.
pub fn route_group_cached<'n>(
    net: &'n QuantumNetwork,
    cache: &mut ChannelFinderCache<'n>,
    capacity: &mut CapacityMap,
    members: &[NodeId],
) -> Option<EntanglementTree> {
    let mut in_tree = vec![false; net.graph().node_count()];
    in_tree[members[0].index()] = true;
    let mut tree = EntanglementTree::new();
    let mut trial_capacity = capacity.clone();
    for _ in 1..members.len() {
        let mut best: Option<Channel> = None;
        for &src in members.iter().filter(|u| in_tree[u.index()]) {
            let finder = cache.finder(&trial_capacity, src);
            for &dst in members.iter().filter(|u| !in_tree[u.index()]) {
                if let Some(c) = finder.channel_to(dst) {
                    if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                        best = Some(c);
                    }
                }
            }
        }
        let c = best?;
        trial_capacity.reserve(&c);
        let newcomer = if in_tree[c.source().index()] {
            c.destination()
        } else {
            c.source()
        };
        in_tree[newcomer.index()] = true;
        tree.push(c);
    }
    *capacity = trial_capacity;
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkSpec;

    fn net() -> QuantumNetwork {
        NetworkSpec::paper_default().build(52)
    }

    fn short_cfg() -> StreamConfig {
        StreamConfig {
            slots: 512,
            window_slots: 32,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = simulate_stream(&net(), short_cfg(), 9);
        let b = simulate_stream(&net(), short_cfg(), 9);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.series, b.series);
    }

    #[test]
    fn accounting_adds_up_and_windows_cover_the_run() {
        let out = simulate_stream(&net(), short_cfg(), 10);
        let stats = out.stats;
        assert!(stats.arrived > 0);
        assert_eq!(stats.arrived, stats.admitted + stats.blocked());
        assert!((0.0..=1.0).contains(&stats.blocking_ratio()));
        assert!(stats.mean_active_sessions <= stats.peak_active_sessions as f64);
        assert_eq!(out.series.evicted, 0, "the ring holds the whole run");
        assert_eq!(out.series.windows.len(), 512 / 32);
        // Window rates sum back to the run totals (nothing evicted).
        let sum = |key: &str| -> u64 { out.series.windows.iter().map(|w| w.rates[key]).sum() };
        assert_eq!(sum("arrivals"), stats.arrived);
        assert_eq!(sum("admitted"), stats.admitted);
        assert_eq!(sum("blocked_no_users"), stats.blocked_no_users);
        assert_eq!(sum("blocked_capacity"), stats.blocked_capacity);
        // And the merged latency histogram saw every routed decision.
        assert_eq!(
            out.series.merged_latency("admission_searches").count(),
            stats.admitted + stats.blocked_capacity
        );
    }

    #[test]
    fn every_window_reports_registered_series() {
        let out = simulate_stream(&net(), short_cfg(), 11);
        for w in &out.series.windows {
            for key in [
                "arrivals",
                "admitted",
                "blocked_no_users",
                "blocked_capacity",
                "churn_events",
            ] {
                assert!(w.rates.contains_key(key), "window {} lacks {key}", w.index);
            }
            for key in ["active_sessions", "free_qubits", "cache_hit_rate"] {
                assert!(w.gauges.contains_key(key), "window {} lacks {key}", w.index);
            }
        }
    }

    #[test]
    fn diurnal_modulation_clamps_and_cycles() {
        let cfg = StreamConfig {
            base_arrival: 0.7,
            diurnal_amplitude: 0.6,
            diurnal_period: 400,
            ..StreamConfig::default()
        };
        // Peak overshoots 1.0 and clamps; trough stays positive.
        assert_eq!(cfg.arrival_at(100), 1.0);
        let trough = cfg.arrival_at(300);
        assert!((trough - 0.7 * 0.4).abs() < 1e-9);
        // One full period later the cycle repeats exactly.
        assert_eq!(cfg.arrival_at(137), cfg.arrival_at(537));
    }

    #[test]
    fn group_sizes_follow_the_power_law() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u64; 6];
        for _ in 0..4_000 {
            let k = sample_group_size(&mut rng, (2, 5), 1.8);
            assert!((2..=5).contains(&k));
            counts[k] += 1;
        }
        assert!(
            counts[2] > 2 * counts[5],
            "alpha=1.8 must strongly favor pairs: {counts:?}"
        );
        // Degenerate range needs no draw at all.
        assert_eq!(sample_group_size(&mut rng, (3, 3), 1.8), 3);
    }

    #[test]
    fn hot_users_are_oversampled() {
        let mut rng = StdRng::seed_from_u64(2);
        let free: Vec<(usize, NodeId)> = (0..20_usize)
            .map(|i| (i, qnet_graph::NodeId::new(i)))
            .collect();
        let hot_count = 5;
        let mut hot_picks = 0u64;
        let mut total = 0u64;
        for _ in 0..2_000 {
            let members = sample_members(&mut rng, &free, 3, hot_count, 8.0);
            assert_eq!(members.len(), 3);
            let distinct: HashSet<_> = members.iter().collect();
            assert_eq!(distinct.len(), 3, "sampling is without replacement");
            hot_picks += members.iter().filter(|m| m.index() < hot_count).count() as u64;
            total += 3;
        }
        // 25% of users carry weight 8: expect well over half the picks.
        assert!(
            hot_picks * 2 > total,
            "hot region under-sampled: {hot_picks}/{total}"
        );
    }

    #[test]
    fn sampler_tally_is_exact_and_level_independent() {
        let out = simulate_stream(&net(), short_cfg(), 12);
        let blocked = out.stats.blocked();
        assert!(blocked > 0, "workload must block under this seed");
        // 1-in-8 cadence: the first block of each run of 8 is kept.
        let kept = blocked.div_ceil(8);
        assert_eq!(out.stats.sampled_out, blocked - kept);
    }

    fn churn_cfg() -> StreamConfig {
        StreamConfig {
            churn_every: 16,
            churn_qubits: 4,
            churn_hold: 48,
            ..short_cfg()
        }
    }

    #[test]
    fn churn_is_deterministic_and_counted_exactly() {
        let a = simulate_stream(&net(), churn_cfg(), 21);
        let b = simulate_stream(&net(), churn_cfg(), 21);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.series, b.series);
        // Slots 16, 32, … 496 fire: (slots - 1) / churn_every events.
        assert_eq!(a.stats.churn_events, (512 - 1) / 16);
        let sum: u64 = a
            .series
            .windows
            .iter()
            .map(|w| w.rates["churn_events"])
            .sum();
        assert_eq!(sum, a.stats.churn_events, "windows account for every event");
        // Relay-killing withdrawals must exercise the repair path.
        assert!(
            a.stats.cache.repairs > 0,
            "churn must trigger delta repairs"
        );
    }

    #[test]
    fn churn_perturbs_capacity_but_not_the_base_workload() {
        let calm = simulate_stream(&net(), short_cfg(), 22);
        let churned = simulate_stream(&net(), churn_cfg(), 22);
        // Arrivals draw from the main RNG stream only, so the offered
        // load is bit-identical; only admission outcomes may move.
        assert_eq!(calm.stats.arrived, churned.stats.arrived);
        assert_eq!(calm.stats.churn_events, 0);
        assert!(churned.stats.churn_events > 0);
    }

    #[test]
    fn request_stream_is_deterministic_and_open_loop() {
        let net = net();
        let a: Vec<Request> = RequestStream::new(&net, short_cfg(), 33).collect();
        let b: Vec<Request> = RequestStream::new(&net, short_cfg(), 33).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let (lo, hi) = short_cfg().group_size;
        let (hlo, hhi) = short_cfg().hold_slots;
        let mut classes = HashSet::new();
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids are sequential in arrival order");
            assert!(r.slot < short_cfg().slots);
            assert!((lo..=hi).contains(&r.members.len()));
            let distinct: HashSet<_> = r.members.iter().collect();
            assert_eq!(distinct.len(), r.members.len(), "members are distinct");
            assert!((hlo..=hhi).contains(&r.hold));
            classes.insert(r.class);
        }
        // Slots strictly increase (at most one arrival per slot).
        for w in a.windows(2) {
            assert!(w[0].slot < w[1].slot);
        }
        assert!(classes.len() >= 2, "a 512-slot run draws several classes");
    }

    #[test]
    fn stream_consumes_the_request_iterator_verbatim() {
        let out = simulate_stream(&net(), short_cfg(), 14);
        let script: Vec<Request> = RequestStream::new(&net(), short_cfg(), 14).collect();
        // Every scripted request arrives — admission outcomes cannot
        // feed back into the offered load.
        assert_eq!(out.stats.arrived, script.len() as u64);
    }

    #[test]
    fn departure_restores_cancel_pending_repairs() {
        use crate::model::{NodeKind, PhysicsParams};
        use qnet_graph::Graph;
        // a —1000— s (2 qubits) —1000— b, plus a direct 2500 fiber.
        // q = 0.99: the relayed route wins while s can relay.
        let mut g: Graph<NodeKind, f64> = Graph::new();
        let a = g.add_node(NodeKind::User);
        let s = g.add_node(NodeKind::Switch { qubits: 2 });
        let b = g.add_node(NodeKind::User);
        g.add_edge(a, s, 1000.0);
        g.add_edge(s, b, 1000.0);
        g.add_edge(a, b, 2500.0);
        let physics = PhysicsParams {
            swap_success: 0.99,
            attenuation: 1e-4,
        };
        let net = QuantumNetwork::from_graph(g, physics);
        let mut capacity = CapacityMap::new(&net);
        let mut cache = ChannelFinderCache::new(&net);

        // Admission reserves both of s's qubits: s's relay bit flips off.
        let tree = route_group_cached(&net, &mut cache, &mut capacity, &[a, b])
            .expect("relayed route feasible");
        assert_eq!(tree.channels[0].link_count(), 2, "route goes via s");
        // Absorb the kill: the cached entry for `a` now carries a
        // pending repair for s.
        cache.absorb(&capacity);
        let searches = cache.search_count();
        let hits = cache.efficiency().hits;

        // The session departs through the real departure path: the
        // release flips s back on and the eager absorb nets the restore
        // out against the queued repair.
        let mut active = vec![Session {
            tree,
            expires_at: 3,
            members: vec![a, b],
        }];
        let departed = apply_departures(&mut active, &mut capacity, &mut cache, 5);
        assert_eq!(departed, 1);
        assert!(active.is_empty());

        // The next lookup must be an O(1) revalidation: no repair ran,
        // no search ran, and the restored relay is visible again.
        let c = cache.finder(&capacity, a).channel_to(b).expect("route");
        assert_eq!(c.link_count(), 2, "restored relay visible again");
        let eff = cache.efficiency();
        assert_eq!(eff.repairs, 0, "pending repair was cancelled, not run");
        assert_eq!(cache.search_count(), searches, "no full search either");
        assert_eq!(eff.hits, hits + 1, "served as a clean revalidation");
    }

    #[test]
    #[should_panic(expected = "hotspot weight")]
    fn bad_config_rejected() {
        simulate_stream(
            &net(),
            StreamConfig {
                hotspot_weight: 0.5,
                ..StreamConfig::default()
            },
            13,
        );
    }
}
