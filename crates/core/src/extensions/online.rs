//! Online entanglement sessions — operating the quantum internet over
//! time.
//!
//! The paper routes one offline request; a deployed network serves a
//! *stream*: entanglement-group requests arrive, hold switch qubits for
//! the lifetime of their session, and depart. This module simulates that
//! operation on top of the MUERP machinery:
//!
//! * each slot, a new group request arrives with probability
//!   [`OnlineConfig::arrival_prob`], drawing its members from the users
//!   not currently in a session;
//! * admission control routes the group Prim-style (Algorithm 4) over
//!   the *residual* capacity left by active sessions — infeasible
//!   requests are **blocked** (the classic Erlang-style metric);
//! * admitted sessions hold their interior-switch qubits for a sampled
//!   duration, then release them.
//!
//! The output is the blocking ratio, mean session rate, and concurrency
//! statistics — the quantities an architectural design study (the
//! paper's §VII outlook) would sweep.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::channel::{CapacityMap, Channel};
use crate::model::QuantumNetwork;
use crate::tree::EntanglementTree;

use crate::algorithms::ChannelFinderCache;

/// Workload and service parameters of the online simulation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Per-slot probability a new group request arrives.
    pub arrival_prob: f64,
    /// Inclusive range of requested group sizes.
    pub group_size: (usize, usize),
    /// Inclusive range of session durations in slots.
    pub hold_slots: (u64, u64),
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            arrival_prob: 0.3,
            group_size: (2, 4),
            hold_slots: (5, 20),
        }
    }
}

impl OnlineConfig {
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.arrival_prob),
            "arrival probability must be in [0, 1]"
        );
        assert!(
            2 <= self.group_size.0 && self.group_size.0 <= self.group_size.1,
            "group sizes must satisfy 2 ≤ min ≤ max"
        );
        assert!(
            1 <= self.hold_slots.0 && self.hold_slots.0 <= self.hold_slots.1,
            "hold durations must satisfy 1 ≤ min ≤ max"
        );
    }
}

/// Aggregate statistics of one online run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests admitted (routed successfully).
    pub admitted: u64,
    /// Requests blocked because too few users were free of sessions.
    pub blocked_no_users: u64,
    /// Requests blocked because no capacity-respecting tree existed.
    pub blocked_capacity: u64,
    /// Mean entanglement rate over admitted sessions.
    pub mean_session_rate: f64,
    /// Mean number of concurrently active sessions (per slot).
    pub mean_active_sessions: f64,
    /// Peak concurrent sessions.
    pub peak_active_sessions: usize,
}

impl OnlineStats {
    /// Total blocked requests (either reason).
    pub fn blocked(&self) -> u64 {
        self.blocked_no_users + self.blocked_capacity
    }

    /// Fraction of arrived requests that were blocked.
    pub fn blocking_ratio(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.blocked() as f64 / self.arrived as f64
        }
    }
}

struct Session {
    tree: EntanglementTree,
    expires_at: u64,
    members: Vec<qnet_graph::NodeId>,
}

/// Runs the online session simulation for `slots` slots.
///
/// Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics on out-of-range configuration or when the network has fewer
/// users than the minimum group size.
pub fn simulate_online(
    net: &QuantumNetwork,
    cfg: OnlineConfig,
    slots: u64,
    seed: u64,
) -> OnlineStats {
    cfg.validate();
    assert!(
        net.user_count() >= cfg.group_size.0,
        "network has {} users, groups need at least {}",
        net.user_count(),
        cfg.group_size.0
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut capacity = CapacityMap::new(net);
    // Admission searches go through the delta-aware cache: session
    // arrivals/departures perturb capacity locally, so most per-slot
    // refreshes are O(1) revalidations or in-place SSSP repairs rather
    // than full searches.
    let mut cache = ChannelFinderCache::new(net);
    let mut active: Vec<Session> = Vec::new();
    let mut stats = OnlineStats::default();
    let mut session_rate_sum = 0.0f64;
    let mut active_slot_sum = 0u64;

    for now in 0..slots {
        // Departures first: free the qubits of expired sessions.
        let mut kept = Vec::with_capacity(active.len());
        for session in active.drain(..) {
            if session.expires_at <= now {
                for c in &session.tree.channels {
                    capacity.release(c);
                }
            } else {
                kept.push(session);
            }
        }
        active = kept;

        // Arrival?
        if rng.random_bool(cfg.arrival_prob) {
            stats.arrived += 1;
            let busy: std::collections::HashSet<_> = active
                .iter()
                .flat_map(|s| s.members.iter().copied())
                .collect();
            let mut free: Vec<_> = net
                .users()
                .iter()
                .copied()
                .filter(|u| !busy.contains(u))
                .collect();
            let size = rng.random_range(cfg.group_size.0..=cfg.group_size.1);
            if free.len() < size {
                stats.blocked_no_users += 1;
                if qnet_obs::trace_enabled() {
                    qnet_obs::record_event(qnet_obs::TraceEvent::Blocked {
                        reason: "no-users",
                        group_size: size as u32,
                        at_slot: now,
                    });
                }
            } else {
                free.shuffle(&mut rng);
                let members: Vec<_> = free[..size].to_vec();
                match route_group(net, &mut cache, &mut capacity, &members) {
                    Some(tree) => {
                        stats.admitted += 1;
                        session_rate_sum += tree.rate().value();
                        let hold = rng.random_range(cfg.hold_slots.0..=cfg.hold_slots.1);
                        active.push(Session {
                            tree,
                            expires_at: now + hold,
                            members,
                        });
                    }
                    None => {
                        stats.blocked_capacity += 1;
                        if qnet_obs::trace_enabled() {
                            qnet_obs::record_event(qnet_obs::TraceEvent::Blocked {
                                reason: "capacity",
                                group_size: size as u32,
                                at_slot: now,
                            });
                        }
                    }
                }
            }
        }

        active_slot_sum += active.len() as u64;
        stats.peak_active_sessions = stats.peak_active_sessions.max(active.len());
    }

    stats.mean_session_rate = if stats.admitted == 0 {
        0.0
    } else {
        session_rate_sum / stats.admitted as f64
    };
    stats.mean_active_sessions = active_slot_sum as f64 / slots.max(1) as f64;
    stats
}

/// Prim-style group routing over shared residual capacity; reserves the
/// qubits on success, touches nothing on failure. Searches go through
/// the delta-aware `cache`, which refreshes incrementally across the
/// trial-capacity churn.
fn route_group(
    net: &QuantumNetwork,
    cache: &mut ChannelFinderCache<'_>,
    capacity: &mut CapacityMap,
    members: &[qnet_graph::NodeId],
) -> Option<EntanglementTree> {
    let mut in_tree = vec![false; net.graph().node_count()];
    in_tree[members[0].index()] = true;
    let mut tree = EntanglementTree::new();
    let mut trial_capacity = capacity.clone();
    for _ in 1..members.len() {
        let mut best: Option<Channel> = None;
        for &src in members.iter().filter(|u| in_tree[u.index()]) {
            let finder = cache.finder(&trial_capacity, src);
            for &dst in members.iter().filter(|u| !in_tree[u.index()]) {
                if let Some(c) = finder.channel_to(dst) {
                    if best.as_ref().is_none_or(|b| c.rate > b.rate) {
                        best = Some(c);
                    }
                }
            }
        }
        let c = best?;
        trial_capacity.reserve(&c);
        let newcomer = if in_tree[c.source().index()] {
            c.destination()
        } else {
            c.source()
        };
        in_tree[newcomer.index()] = true;
        tree.push(c);
    }
    *capacity = trial_capacity;
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetworkSpec;

    /// Seed 52 yields a network where every user pair is routable (some
    /// seeds strand a user behind user-only neighbors — a real model
    /// phenomenon, but noise for these tests).
    fn net() -> QuantumNetwork {
        NetworkSpec::paper_default().build(52)
    }

    #[test]
    fn no_arrivals_no_sessions() {
        let stats = simulate_online(
            &net(),
            OnlineConfig {
                arrival_prob: 0.0,
                ..OnlineConfig::default()
            },
            500,
            1,
        );
        assert_eq!(stats.arrived, 0);
        assert_eq!(stats.blocking_ratio(), 0.0);
        assert_eq!(stats.peak_active_sessions, 0);
    }

    #[test]
    fn accounting_adds_up() {
        let stats = simulate_online(&net(), OnlineConfig::default(), 2_000, 2);
        assert!(stats.arrived > 0);
        assert_eq!(stats.arrived, stats.admitted + stats.blocked());
        assert!((0.0..=1.0).contains(&stats.blocking_ratio()));
        assert!(stats.mean_active_sessions <= stats.peak_active_sessions as f64);
        if stats.admitted > 0 {
            assert!(stats.mean_session_rate > 0.0);
        }
    }

    #[test]
    fn heavier_load_blocks_more() {
        let light = simulate_online(
            &net(),
            OnlineConfig {
                arrival_prob: 0.05,
                hold_slots: (2, 4),
                ..OnlineConfig::default()
            },
            4_000,
            3,
        );
        let heavy = simulate_online(
            &net(),
            OnlineConfig {
                arrival_prob: 0.9,
                hold_slots: (30, 60),
                ..OnlineConfig::default()
            },
            4_000,
            3,
        );
        assert!(
            heavy.blocking_ratio() > light.blocking_ratio(),
            "heavy {} vs light {}",
            heavy.blocking_ratio(),
            light.blocking_ratio()
        );
        assert!(heavy.mean_active_sessions > light.mean_active_sessions);
    }

    #[test]
    fn sessions_release_their_qubits() {
        // With short holds and long gaps, capacity returns to full:
        // admissions late in the run succeed as easily as early ones.
        let stats = simulate_online(
            &net(),
            OnlineConfig {
                arrival_prob: 0.02,
                group_size: (2, 2),
                hold_slots: (1, 2),
            },
            8_000,
            4,
        );
        assert!(stats.arrived > 50);
        // Pairs on an otherwise idle default network are almost always
        // routable.
        assert!(
            stats.blocking_ratio() < 0.05,
            "blocking {} too high for an idle network",
            stats.blocking_ratio()
        );
    }

    #[test]
    fn deterministic() {
        let a = simulate_online(&net(), OnlineConfig::default(), 1_000, 5);
        let b = simulate_online(&net(), OnlineConfig::default(), 1_000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn blocked_decisions_land_in_the_flight_recorder() {
        qnet_obs::set_level(qnet_obs::ObsLevel::Trace);
        qnet_obs::reset_trace();
        // Tag this thread with a sentinel so the assertion stays exact
        // even if a concurrent test emits trace events into the shared
        // ring.
        qnet_obs::record_event(qnet_obs::TraceEvent::Blocked {
            reason: "sentinel",
            group_size: 0,
            at_slot: u64::MAX,
        });
        let slots = 2_000;
        let stats = simulate_online(
            &net(),
            OnlineConfig {
                arrival_prob: 0.9,
                hold_slots: (30, 60),
                ..OnlineConfig::default()
            },
            slots,
            7,
        );
        let events = qnet_obs::trace_snapshot();
        qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
        qnet_obs::reset_trace();

        let me = events
            .iter()
            .find_map(|s| match s.event {
                qnet_obs::TraceEvent::Blocked {
                    reason: "sentinel", ..
                } => Some(s.thread),
                _ => None,
            })
            .expect("sentinel event recorded");
        let mut no_users = 0u64;
        let mut capacity = 0u64;
        for s in events.iter().filter(|s| s.thread == me) {
            if let qnet_obs::TraceEvent::Blocked {
                reason,
                group_size,
                at_slot,
            } = s.event
            {
                match reason {
                    "sentinel" => continue,
                    "no-users" => no_users += 1,
                    "capacity" => capacity += 1,
                    other => panic!("unexpected block reason {other}"),
                }
                assert!(at_slot < slots, "block stamped with its slot");
                assert!(group_size >= 2, "block carries the group size");
            }
        }
        assert!(stats.blocked() > 0, "heavy load must block");
        assert_eq!(no_users, stats.blocked_no_users);
        assert_eq!(capacity, stats.blocked_capacity);
    }

    #[test]
    #[should_panic(expected = "arrival probability")]
    fn bad_config_rejected() {
        simulate_online(
            &net(),
            OnlineConfig {
                arrival_prob: 1.5,
                ..OnlineConfig::default()
            },
            10,
            6,
        );
    }
}
