//! Thread-count invariance of the parallel search core.
//!
//! The channel-finder cache batches stale sources across a worker pool
//! (`ChannelFinderCache::warm`) and merges in source order, so every
//! observable output — finder results, channels, solver solutions, and
//! even the `FinderRun` flight-recorder stream — must be bitwise
//! identical at any pool width. These tests pin that contract at widths
//! 1 and 3 (3 exceeds this suite's job counts enough to exercise the
//! work-stealing path even on a single-core host).

use muerp_core::algorithms::{ChannelFinderCache, ConflictFree, PrimBased};
use muerp_core::channel::{CapacityMap, Channel};
use muerp_core::model::NetworkSpec;
use muerp_core::solver::RoutingAlgorithm;
use qnet_pool::Pool;

/// Serializes the tests touching process-global observability state
/// (trace recorder, level) and the pool-width default.
fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Warms every user source on a width-`threads` pool and collects the
/// full pairwise channel matrix from the cached finders.
fn warm_channel_matrix(threads: usize, seed: u64) -> Vec<Option<Channel>> {
    let net = NetworkSpec::paper_default().build(seed);
    let capacity = CapacityMap::new(&net);
    let users = net.users().to_vec();
    let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(threads));
    cache.warm(&capacity, &users);
    let mut matrix = Vec::new();
    for &src in &users {
        let finder = cache.finder(&capacity, src);
        for &dst in &users {
            if dst != src {
                matrix.push(finder.channel_to(dst));
            }
        }
    }
    matrix
}

#[test]
fn warm_channels_are_bitwise_equal_across_pool_widths() {
    let _lock = global_lock();
    for seed in [0u64, 7, 42] {
        let one = warm_channel_matrix(1, seed);
        let three = warm_channel_matrix(3, seed);
        assert!(one.iter().any(Option::is_some), "seed {seed}: empty matrix");
        assert_eq!(one, three, "seed {seed}: channels diverged across widths");
    }
}

/// The flight-recorder stream of a warm batch: events are flushed on the
/// calling thread in source order after the merge, so the recorder
/// contents must not depend on the pool width.
#[test]
fn finder_run_events_are_identical_across_pool_widths() {
    let _lock = global_lock();
    let events_at = |threads: usize| {
        qnet_obs::set_level(qnet_obs::ObsLevel::Trace);
        qnet_obs::reset_trace();
        let net = NetworkSpec::paper_default().build(11);
        let capacity = CapacityMap::new(&net);
        let users = net.users().to_vec();
        let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(threads));
        cache.warm(&capacity, &users);
        let events = qnet_obs::trace_snapshot();
        qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
        qnet_obs::reset_trace();
        // Project out wall-clock timestamps and the process-global
        // capacity epoch (both advance between the two runs); sequence
        // numbers, emitting thread, source order, and tallies are the
        // determinism contract.
        events
            .into_iter()
            .map(|s| match s.event {
                qnet_obs::TraceEvent::FinderRun {
                    source,
                    rejected_full,
                    ..
                } => (s.seq, s.thread, source, rejected_full),
                other => panic!("unexpected event in warm batch: {other:?}"),
            })
            .collect::<Vec<_>>()
    };
    let one = events_at(1);
    let three = events_at(3);
    assert!(
        !one.is_empty(),
        "warm must emit FinderRun events at trace level"
    );
    assert_eq!(one, three, "recorder streams diverged across widths");
}

/// End-to-end: the full solvers (which reach the pool through
/// `ChannelFinderCache::new` → `Pool::from_env`) produce identical
/// solutions when the process-default width changes.
#[test]
fn solver_solutions_are_invariant_under_default_pool_width() {
    let _lock = global_lock();
    if std::env::var_os(qnet_pool::THREADS_ENV).is_some() {
        return; // explicit override wins over set_default_threads
    }
    for seed in [3u64, 9] {
        let net = NetworkSpec::paper_default().build(seed);
        let solve_at = |threads: usize| {
            qnet_pool::set_default_threads(Some(threads));
            let out = (
                ConflictFree::default().solve(&net),
                PrimBased::default().solve(&net),
            );
            qnet_pool::set_default_threads(None);
            out
        };
        assert_eq!(solve_at(1), solve_at(3), "seed {seed}");
    }
}
