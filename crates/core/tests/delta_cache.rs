//! Differential battery for the dirty-set cache: every lookup served
//! after a sequence of capacity deltas — by O(1) revalidation, in-place
//! SSSP repair, or full recompute — must be **bitwise identical** to a
//! cold, cache-free `ChannelFinder` under the same capacity map, at
//! every pool width, and the warm path must never install an entry a
//! concurrent-looking delta could leave stale (the snapshot/install
//! hazard).

use muerp_core::algorithms::{ChannelFinder, ChannelFinderCache};
use muerp_core::channel::CapacityMap;
use muerp_core::model::{NetworkSpec, QuantumNetwork};
use qnet_graph::NodeId;
use qnet_pool::Pool;

/// Asserts every cached per-source run equals a cold from-scratch run
/// under `capacity` — distances, predecessors, reachability.
fn assert_matches_cold(
    net: &QuantumNetwork,
    cache: &mut ChannelFinderCache<'_>,
    capacity: &CapacityMap,
    sources: &[NodeId],
    context: &str,
) {
    for &src in sources {
        let cached = cache.finder(capacity, src).run().clone();
        let cold = ChannelFinder::from_source(net, capacity, src);
        assert_eq!(
            &cached,
            cold.run(),
            "cached run for source {src} diverged from cold recomputation ({context})"
        );
    }
}

/// A deterministic delta schedule exercising every classification arm:
/// threshold-preserving reserves (clean), relay-killing withdrawals
/// (repair), restorations (recompute), and cancelling round trips.
fn delta_schedule(net: &QuantumNetwork) -> Vec<(NodeId, i64)> {
    let switches: Vec<NodeId> = net.switches().collect();
    let mut schedule = Vec::new();
    for (i, &s) in switches.iter().enumerate().take(6) {
        match i % 3 {
            0 => {
                // Kill the relay outright, then bring it back.
                schedule.push((s, -1_000));
                schedule.push((s, 1_000));
            }
            1 => {
                // Shave capacity without crossing the ≥ 2 threshold.
                let spare = net.kind(s).qubits().saturating_sub(3).min(4) as i64;
                schedule.push((s, -spare));
            }
            _ => {
                // Kill another relay and leave it dead.
                schedule.push((s, -1_000));
            }
        }
    }
    schedule
}

fn apply(capacity: &mut CapacityMap, (node, qubits): (NodeId, i64)) {
    if qubits < 0 {
        capacity.withdraw(node, (-qubits) as u32);
    } else {
        capacity.grant(node, qubits as u32);
    }
}

#[test]
fn delta_sequence_matches_cold_cache_at_every_step() {
    let net = NetworkSpec::paper_default().build(42);
    let users = net.users().to_vec();
    let mut capacity = CapacityMap::new(&net);
    let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(1));
    cache.warm(&capacity, &users);
    assert_matches_cold(&net, &mut cache, &capacity, &users, "initial warm");

    for (step, &delta) in delta_schedule(&net).iter().enumerate() {
        apply(&mut capacity, delta);
        assert_matches_cold(
            &net,
            &mut cache,
            &capacity,
            &users,
            &format!("after delta #{step} {delta:?}"),
        );
    }
    let eff = cache.efficiency();
    assert!(
        eff.repairs > 0,
        "the schedule must exercise the repair path, got {eff:?}"
    );
}

#[test]
fn warm_batches_are_width_invariant_under_deltas() {
    // The same warm-then-delta-then-warm sequence must leave identical
    // cache state and identical deterministic tallies at widths 1 and 3.
    let run = |threads: usize| {
        let net = NetworkSpec::paper_default().build(7);
        let users = net.users().to_vec();
        let mut capacity = CapacityMap::new(&net);
        let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(threads));
        let mut runs = Vec::new();
        cache.warm(&capacity, &users);
        for &delta in &delta_schedule(&net) {
            apply(&mut capacity, delta);
            cache.warm(&capacity, &users);
            for &src in &users {
                runs.push(cache.finder(&capacity, src).run().clone());
            }
        }
        (runs, cache.search_count(), cache.efficiency())
    };
    let narrow = run(1);
    let wide = run(3);
    assert_eq!(
        narrow.0, wide.0,
        "cached runs must not depend on pool width"
    );
    assert_eq!(
        narrow.1, wide.1,
        "search counts must not depend on pool width"
    );
    assert_eq!(narrow.2, wide.2, "tallies must not depend on pool width");
}

#[test]
fn warm_snapshot_cannot_leave_stale_entry_marked_clean() {
    // Satellite-4 regression: `warm` snapshots the epoch before worker
    // fan-out and installs entries keyed to it afterwards. A delta
    // "landing between snapshot and install" — i.e. any mutation the
    // cache has not observed when the entries are consulted next — must
    // be classified against those entries, never absorbed silently.
    let net = NetworkSpec::paper_default().build(11);
    let users = net.users().to_vec();
    let capacity = CapacityMap::new(&net);
    let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(3));
    cache.warm(&capacity, &users);
    let warmed_searches = cache.search_count();

    // The delta lands right after the warm's install: kill a relay that
    // sits on at least one cached shortest-path tree.
    let mut degraded = capacity.clone();
    let victim = net
        .switches()
        .find(|&s| {
            users
                .iter()
                .any(|&u| cache.finder(&capacity, u).run().distance(s).is_some())
        })
        .expect("some switch is reachable from some user");
    degraded.withdraw(victim, 1_000);

    // Every lookup under the degraded map must match a cold finder —
    // an entry still marked clean for the old snapshot would serve the
    // pre-delta tree here.
    assert_matches_cold(&net, &mut cache, &degraded, &users, "post-warm delta");
    assert_eq!(
        cache.search_count(),
        warmed_searches,
        "a relay kill is locally repairable: no full searches, only repairs"
    );
    assert!(cache.efficiency().repairs > 0, "delta must not be absorbed");

    // And flipping back to the original map (epoch ping-pong across the
    // same content) must recompute, not reuse the degraded trees.
    let restored = {
        let mut c = degraded.clone();
        c.grant(victim, 1_000);
        c
    };
    assert_matches_cold(&net, &mut cache, &restored, &users, "restored map");
}

#[test]
fn kill_and_restore_cancels_pending_repairs() {
    // A worsening flip observed mid-flight and then reversed before the
    // other entries are consulted must net out: the restored relay
    // cancels their pending repair and they revalidate to their
    // original (still bitwise-correct) runs.
    let net = NetworkSpec::paper_default().build(5);
    let users = net.users().to_vec();
    assert!(users.len() >= 2);
    let mut capacity = CapacityMap::new(&net);
    let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(1));
    cache.warm(&capacity, &users);

    let victim = net
        .switches()
        .find(|&s| {
            users
                .iter()
                .any(|&u| cache.finder(&capacity, u).run().distance(s).is_some())
        })
        .expect("some switch is reachable from some user");
    let searches_before = cache.search_count();

    // Kill the relay and consult only the first user: that entry is
    // repaired now; every other entry keeps a pending repair for victim.
    capacity.withdraw(victim, 1_000);
    let cold = ChannelFinder::from_source(&net, &capacity, users[0]);
    assert_eq!(cache.finder(&capacity, users[0]).run(), cold.run());

    // Restore before anyone else looks: their pending repairs cancel.
    capacity.grant(victim, 1_000);
    assert_matches_cold(&net, &mut cache, &capacity, &users, "after cancel");
    // The un-consulted entries were served without any full search;
    // only the first user's entry (validated while the relay was dead)
    // may need a recompute once the relay returns.
    assert!(
        cache.search_count() - searches_before <= 1,
        "cancelled repairs must not trigger wholesale recomputation"
    );
}

#[test]
fn threshold_preserving_ping_pong_never_searches() {
    // The stream scenario's trial-capacity clone dance: reserve/release
    // cycles that never cross the ≥ 2 relay threshold bump the epoch on
    // every step, yet the dirty-set cache must serve all of it with the
    // initial fills only.
    let net = NetworkSpec::paper_default().with_qubits(8).build(3);
    let users = net.users().to_vec();
    let mut capacity = CapacityMap::new(&net);
    let mut cache = ChannelFinderCache::with_pool(&net, Pool::with_threads(1));

    let baseline: Vec<_> = users
        .iter()
        .map(|&u| cache.finder(&capacity, u).run().clone())
        .collect();
    let fills = cache.search_count();

    let roomy: Vec<NodeId> = net
        .switches()
        .filter(|&s| net.kind(s).qubits() >= 6)
        .take(3)
        .collect();
    assert!(!roomy.is_empty(), "paper topology has roomy switches");
    for round in 0..4 {
        let mut trial = capacity.clone();
        for &s in &roomy {
            trial.withdraw(s, 2); // stays ≥ 2: no relay flip
        }
        capacity = trial;
        for (i, &u) in users.iter().enumerate() {
            assert_eq!(
                cache.finder(&capacity, u).run(),
                &baseline[i],
                "round {round}: threshold-preserving delta changed a run"
            );
        }
        for &s in &roomy {
            capacity.grant(s, 2);
        }
    }
    assert_eq!(
        cache.search_count(),
        fills,
        "every post-fill lookup must be an O(1) revalidation"
    );
    assert_eq!(cache.efficiency().repairs, 0);
}
