//! Differential proptests: every heuristic against the complete
//! exhaustive oracle on tiny instances, all outputs audit-clean.
//!
//! Unlike `properties.rs` (which hop-bounds the oracle and skips the
//! cases that bound truncates), these tests give the oracle a *complete*
//! horizon — `max_links = n − 1` covers every simple path on an
//! `n`-node graph — so on every generated instance the oracle's verdict
//! is authoritative: heuristic rate ≤ optimal rate, and "no tree
//! exists" means no heuristic may find one.

use proptest::prelude::*;

use muerp_core::algorithms::{BeamSearch, ConflictFree, PrimBased, Refined};
use muerp_core::audit::audit_solution;
use muerp_core::feasibility::exhaustive_optimal;
use muerp_core::model::{NodeKind, PhysicsParams, QuantumNetwork};
use muerp_core::solver::{RoutingAlgorithm, Solution};
use muerp_core::survive::{repair, Failure, FailureKind, NetworkState, RepairMethod};
use qnet_graph::{EdgeId, Graph, NodeId};

/// A random ≤ 8-node instance: `users` users, `switches` switches with
/// small qubit counts, random fibers with lengths in [100, 5000].
fn arb_small_network() -> impl Strategy<Value = QuantumNetwork> {
    (2..=4usize, 1..=4usize, 0u32..=2, 0.5f64..=1.0).prop_flat_map(
        |(users, switches, half_qubits, q)| {
            let n = users + switches;
            let edge = (0..n, 0..n, 100.0f64..5000.0);
            proptest::collection::vec(edge, n..=(3 * n)).prop_map(move |edges| {
                let mut g: Graph<NodeKind, f64> = Graph::new();
                for i in 0..n {
                    if i < users {
                        g.add_node(NodeKind::User);
                    } else {
                        g.add_node(NodeKind::Switch {
                            qubits: 2 * half_qubits,
                        });
                    }
                }
                for (a, b, len) in edges {
                    if a != b {
                        g.add_edge(NodeId::new(a), NodeId::new(b), len);
                    }
                }
                QuantumNetwork::from_graph(
                    g,
                    PhysicsParams {
                        swap_success: q,
                        attenuation: 1e-4,
                    },
                )
            })
        },
    )
}

/// The heuristics under differential test, solved on `net`.
fn heuristic_solutions(net: &QuantumNetwork) -> Vec<(&'static str, Solution)> {
    let runs = [
        ("prim", PrimBased::default().solve(net)),
        ("alg3", ConflictFree::default().solve(net)),
        ("beam", BeamSearch::default().solve(net)),
        (
            "local-search",
            Refined {
                inner: PrimBased::default(),
                options: Default::default(),
            }
            .solve(net),
        ),
    ];
    runs.into_iter()
        .filter_map(|(name, outcome)| outcome.ok().map(|sol| (name, sol)))
        .collect()
}

/// Best rate of the complete exhaustive oracle on the materialized
/// degraded network, or `None` when it proves infeasibility.
fn net_oracle(state: &NetworkState<'_>) -> Option<f64> {
    let degraded = state.materialize();
    let n = degraded.graph().node_count();
    exhaustive_optimal(&degraded, n.saturating_sub(1))
        .map(|tree| Solution::from_tree(tree).rate.value())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristics_are_audit_clean_and_oracle_bounded(net in arb_small_network()) {
        let n = net.graph().node_count();
        // Complete horizon: every simple path on n nodes has ≤ n−1 links.
        let oracle = exhaustive_optimal(&net, n - 1);
        let solutions = heuristic_solutions(&net);
        match oracle {
            Some(tree) => {
                let optimal = Solution::from_tree(tree);
                prop_assert!(
                    audit_solution(&net, &optimal).is_ok(),
                    "oracle output failed the audit: {:?}",
                    audit_solution(&net, &optimal)
                );
                let bound = optimal.rate.value() * (1.0 + 1e-9);
                for (name, sol) in &solutions {
                    if let Err(v) = audit_solution(&net, sol) {
                        prop_assert!(false, "{name} failed the audit: {v}");
                    }
                    prop_assert!(
                        sol.rate.value() <= bound,
                        "{name} rate {} beat the complete oracle {}",
                        sol.rate.value(),
                        optimal.rate.value()
                    );
                }
            }
            None => {
                // The complete oracle proved infeasibility: nobody may
                // produce a tree.
                for (name, sol) in &solutions {
                    prop_assert!(
                        false,
                        "{name} found a tree (rate {}) on an instance the \
                         complete oracle proved infeasible",
                        sol.rate.value()
                    );
                }
            }
        }
    }

    #[test]
    fn single_failure_repair_is_sound(
        net in arb_small_network(),
        pick in 0..1_000_000usize,
        roll in 0..2usize,
    ) {
        let prefer_node = roll == 1;
        let Ok(base) = PrimBased::default().solve(&net) else { return Ok(()) };

        // A random single infrastructure failure: a switch death when
        // requested and possible, otherwise a link cut.
        let switches: Vec<NodeId> = net
            .graph()
            .node_ids()
            .filter(|&v| net.kind(v).is_switch())
            .collect();
        let kind = if prefer_node && !switches.is_empty() {
            FailureKind::SwitchDeath { node: switches[pick % switches.len()] }
        } else if net.graph().edge_count() > 0 {
            FailureKind::LinkCut { edge: EdgeId::new(pick % net.graph().edge_count()) }
        } else {
            return Ok(());
        };
        let failure = Failure { kind, at_slot: 0 };
        let mut state = NetworkState::new(&net);
        state.apply(&failure.kind);

        let outcome = repair(&net, &base, &state);
        // Do-nothing floor: the rate kept by leaving the broken tree up.
        let do_nothing = if state.admits_solution(&base) { base.rate.value() } else { 0.0 };

        match &outcome.solution {
            Some(fixed) => {
                if let Err(v) = audit_solution(&net, fixed) {
                    prop_assert!(false, "{} repair failed the audit: {v}", outcome.method.name());
                }
                prop_assert!(
                    state.admits_solution(fixed),
                    "{} repair does not fit the degraded network",
                    outcome.method.name()
                );
                prop_assert!(
                    fixed.rate.value() >= do_nothing * (1.0 - 1e-12),
                    "{} repair rate {} below do-nothing {do_nothing}",
                    outcome.method.name(),
                    fixed.rate.value()
                );
                if outcome.method == RepairMethod::Untouched {
                    prop_assert!(fixed.rate.value() == base.rate.value());
                }
                // Upper bound: the exhaustive optimum of the degraded
                // network (same node ids, dead elements removed).
                let degraded = net_oracle(&state);
                match degraded {
                    Some(best) => prop_assert!(
                        fixed.rate.value() <= best * (1.0 + 1e-9),
                        "{} repair rate {} beat the degraded oracle {best}",
                        outcome.method.name(),
                        fixed.rate.value()
                    ),
                    None => prop_assert!(
                        false,
                        "{} repaired (rate {}) an instance the complete degraded \
                         oracle proved infeasible",
                        outcome.method.name(),
                        fixed.rate.value()
                    ),
                }
            }
            None => {
                prop_assert!(outcome.method == RepairMethod::Unrepairable);
                prop_assert!(
                    do_nothing == 0.0,
                    "repair gave up although the original tree still fits"
                );
            }
        }
    }

    #[test]
    fn refinement_never_worsens_and_stays_audit_clean(net in arb_small_network()) {
        if let Ok(base) = PrimBased::default().solve(&net) {
            let refined = Refined {
                inner: PrimBased::default(),
                options: Default::default(),
            }
            .solve(&net)
            .expect("base solved, refined must too");
            prop_assert!(audit_solution(&net, &refined).is_ok());
            prop_assert!(refined.rate.value() >= base.rate.value() * (1.0 - 1e-12));
        }
    }
}
