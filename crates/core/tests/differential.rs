//! Differential proptests: every heuristic against the complete
//! exhaustive oracle on tiny instances, all outputs audit-clean.
//!
//! Unlike `properties.rs` (which hop-bounds the oracle and skips the
//! cases that bound truncates), these tests give the oracle a *complete*
//! horizon — `max_links = n − 1` covers every simple path on an
//! `n`-node graph — so on every generated instance the oracle's verdict
//! is authoritative: heuristic rate ≤ optimal rate, and "no tree
//! exists" means no heuristic may find one.

use proptest::prelude::*;

use muerp_core::algorithms::{BeamSearch, ConflictFree, PrimBased, Refined};
use muerp_core::audit::audit_solution;
use muerp_core::feasibility::exhaustive_optimal;
use muerp_core::model::{NodeKind, PhysicsParams, QuantumNetwork};
use muerp_core::solver::{RoutingAlgorithm, Solution};
use qnet_graph::{Graph, NodeId};

/// A random ≤ 8-node instance: `users` users, `switches` switches with
/// small qubit counts, random fibers with lengths in [100, 5000].
fn arb_small_network() -> impl Strategy<Value = QuantumNetwork> {
    (2..=4usize, 1..=4usize, 0u32..=2, 0.5f64..=1.0).prop_flat_map(
        |(users, switches, half_qubits, q)| {
            let n = users + switches;
            let edge = (0..n, 0..n, 100.0f64..5000.0);
            proptest::collection::vec(edge, n..=(3 * n)).prop_map(move |edges| {
                let mut g: Graph<NodeKind, f64> = Graph::new();
                for i in 0..n {
                    if i < users {
                        g.add_node(NodeKind::User);
                    } else {
                        g.add_node(NodeKind::Switch {
                            qubits: 2 * half_qubits,
                        });
                    }
                }
                for (a, b, len) in edges {
                    if a != b {
                        g.add_edge(NodeId::new(a), NodeId::new(b), len);
                    }
                }
                QuantumNetwork::from_graph(
                    g,
                    PhysicsParams {
                        swap_success: q,
                        attenuation: 1e-4,
                    },
                )
            })
        },
    )
}

/// The heuristics under differential test, solved on `net`.
fn heuristic_solutions(net: &QuantumNetwork) -> Vec<(&'static str, Solution)> {
    let runs = [
        ("prim", PrimBased::default().solve(net)),
        ("alg3", ConflictFree::default().solve(net)),
        ("beam", BeamSearch::default().solve(net)),
        (
            "local-search",
            Refined {
                inner: PrimBased::default(),
                options: Default::default(),
            }
            .solve(net),
        ),
    ];
    runs.into_iter()
        .filter_map(|(name, outcome)| outcome.ok().map(|sol| (name, sol)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristics_are_audit_clean_and_oracle_bounded(net in arb_small_network()) {
        let n = net.graph().node_count();
        // Complete horizon: every simple path on n nodes has ≤ n−1 links.
        let oracle = exhaustive_optimal(&net, n - 1);
        let solutions = heuristic_solutions(&net);
        match oracle {
            Some(tree) => {
                let optimal = Solution::from_tree(tree);
                prop_assert!(
                    audit_solution(&net, &optimal).is_ok(),
                    "oracle output failed the audit: {:?}",
                    audit_solution(&net, &optimal)
                );
                let bound = optimal.rate.value() * (1.0 + 1e-9);
                for (name, sol) in &solutions {
                    if let Err(v) = audit_solution(&net, sol) {
                        prop_assert!(false, "{name} failed the audit: {v}");
                    }
                    prop_assert!(
                        sol.rate.value() <= bound,
                        "{name} rate {} beat the complete oracle {}",
                        sol.rate.value(),
                        optimal.rate.value()
                    );
                }
            }
            None => {
                // The complete oracle proved infeasibility: nobody may
                // produce a tree.
                for (name, sol) in &solutions {
                    prop_assert!(
                        false,
                        "{name} found a tree (rate {}) on an instance the \
                         complete oracle proved infeasible",
                        sol.rate.value()
                    );
                }
            }
        }
    }

    #[test]
    fn refinement_never_worsens_and_stays_audit_clean(net in arb_small_network()) {
        if let Ok(base) = PrimBased::default().solve(&net) {
            let refined = Refined {
                inner: PrimBased::default(),
                options: Default::default(),
            }
            .solve(&net)
            .expect("base solved, refined must too");
            prop_assert!(audit_solution(&net, &refined).is_ok());
            prop_assert!(refined.rate.value() >= base.rate.value() * (1.0 - 1e-12));
        }
    }
}
