//! Property-based tests over random MUERP instances.
//!
//! Strategies generate small random quantum networks (hand-rolled, not
//! via the topology crate, so shrinking stays meaningful); properties
//! assert the invariants every algorithm must uphold and cross-check the
//! heuristics against the exhaustive oracle.

use proptest::prelude::*;

use muerp_core::algorithms::{
    k_best_channels, max_rate_channel, refine, ConflictFree, LocalSearchOptions, OptimalSufficient,
    PrimBased,
};
use muerp_core::channel::CapacityMap;
use muerp_core::feasibility::{enumerate_channels, exhaustive_optimal};
use muerp_core::model::{NodeKind, PhysicsParams, QuantumNetwork};
use muerp_core::solver::{validate_solution, RoutingAlgorithm};
use qnet_graph::{Graph, NodeId};

/// A random small instance: `users` user nodes, `switches` switch nodes
/// with `qubits` qubits, random edges with lengths in [100, 5000].
fn arb_network(max_users: usize, max_switches: usize) -> impl Strategy<Value = QuantumNetwork> {
    (2..=max_users, 1..=max_switches, 1u32..=3, 0.5f64..=1.0).prop_flat_map(
        move |(users, switches, half_qubits, q)| {
            let n = users + switches;
            let edge = (0..n, 0..n, 100.0f64..5000.0);
            proptest::collection::vec(edge, n..=(3 * n)).prop_map(move |edges| {
                let mut g: Graph<NodeKind, f64> = Graph::new();
                for i in 0..n {
                    if i < users {
                        g.add_node(NodeKind::User);
                    } else {
                        g.add_node(NodeKind::Switch {
                            qubits: 2 * half_qubits,
                        });
                    }
                }
                for (a, b, len) in edges {
                    if a != b {
                        g.add_edge(NodeId::new(a), NodeId::new(b), len);
                    }
                }
                QuantumNetwork::from_graph(
                    g,
                    PhysicsParams {
                        swap_success: q,
                        attenuation: 1e-4,
                    },
                )
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solutions_always_validate(net in arb_network(5, 6)) {
        for (name, outcome) in [
            ("alg3", ConflictFree::default().solve(&net)),
            ("alg4", PrimBased::default().solve(&net)),
            ("eqcast", muerp_core::algorithms::baselines::EQCast.solve(&net)),
            ("nfusion", muerp_core::algorithms::baselines::NFusion::default().solve(&net)),
        ] {
            if let Ok(sol) = outcome {
                prop_assert!(
                    validate_solution(&net, &sol).is_ok(),
                    "{name} produced an invalid solution: {:?}",
                    validate_solution(&net, &sol)
                );
            }
        }
    }

    #[test]
    fn channel_rate_matches_eq1_exactly(net in arb_network(4, 5)) {
        let cap = CapacityMap::new(&net);
        let users = net.users().to_vec();
        for i in 0..users.len() {
            for j in (i + 1)..users.len() {
                if let Some(c) = max_rate_channel(&net, &cap, users[i], users[j]) {
                    let q = net.physics().swap_success;
                    let alpha = net.physics().attenuation;
                    let total_len: f64 = c.path.edges.iter().map(|&e| net.length(e)).sum();
                    let expected =
                        q.powi(c.link_count() as i32 - 1) * (-alpha * total_len).exp();
                    prop_assert!((c.rate.value() - expected).abs() < 1e-9 * expected);
                }
            }
        }
    }

    #[test]
    fn algorithm1_is_optimal_among_enumerated_channels(net in arb_network(3, 4)) {
        // Algorithm 1's channel must match the best channel found by
        // exhaustive path enumeration (the oracle for Eq. 1).
        let cap = CapacityMap::new(&net);
        let users = net.users().to_vec();
        let (a, b) = (users[0], users[1]);
        let best_enumerated = enumerate_channels(&net, a, b, 6).into_iter().next();
        let alg1 = max_rate_channel(&net, &cap, a, b);
        match (alg1, best_enumerated) {
            (Some(x), Some(y)) => {
                prop_assert!(
                    (x.rate.value() - y.rate.value()).abs() <= 1e-9 * y.rate.value()
                        || x.rate.value() >= y.rate.value(),
                    "alg1 {} < enumerated best {}",
                    x.rate.value(),
                    y.rate.value()
                );
            }
            // Enumeration is hop-bounded at 6; Algorithm 1 may reach
            // farther, never the reverse.
            (None, Some(_)) => prop_assert!(false, "alg1 missed an existing channel"),
            _ => {}
        }
    }

    #[test]
    fn heuristics_never_beat_the_oracle(net in arb_network(4, 4)) {
        prop_assume!(net.graph().node_count() <= 8);
        let Some(oracle) = exhaustive_optimal(&net, 5) else {
            // Infeasible within horizon: heuristics may still find longer
            // channels, which is fine — skip.
            return Ok(());
        };
        let bound = oracle.rate().value() * (1.0 + 1e-9);
        for sol in [
            ConflictFree::default().solve(&net),
            PrimBased::default().solve(&net),
        ]
        .into_iter()
        .flatten()
        {
            if sol.channels.iter().all(|c| c.link_count() <= 5) {
                prop_assert!(
                    sol.rate.value() <= bound,
                    "heuristic {} beat the oracle {}",
                    sol.rate.value(),
                    bound
                );
            }
        }
    }

    #[test]
    fn k_best_channels_are_sorted_distinct_and_headed_by_alg1(net in arb_network(3, 5)) {
        let cap = CapacityMap::new(&net);
        let users = net.users().to_vec();
        let (a, b) = (users[0], users[1]);
        let channels = k_best_channels(&net, &cap, a, b, 4);
        for w in channels.windows(2) {
            prop_assert!(w[0].rate >= w[1].rate);
            prop_assert_ne!(&w[0].path.edges, &w[1].path.edges);
        }
        if let Some(first) = channels.first() {
            let alg1 = max_rate_channel(&net, &cap, a, b).expect("k>0 implies reachable");
            prop_assert!((first.rate.value() - alg1.rate.value()).abs() < 1e-12);
        }
        for c in &channels {
            prop_assert!(c.validate(&net).is_ok());
        }
    }

    #[test]
    fn local_search_is_monotone_and_valid(net in arb_network(4, 5)) {
        if let Ok(base) = PrimBased::default().solve(&net) {
            let refined = refine(&net, base.clone(), LocalSearchOptions {
                k_candidates: 2,
                max_rounds: 3,
                pair_moves: true,
            });
            prop_assert!(validate_solution(&net, &refined).is_ok());
            prop_assert!(refined.rate.value() >= base.rate.value() * (1.0 - 1e-12));
        }
    }

    #[test]
    fn alg2_dominates_heuristics_under_granted_capacity(net in arb_network(5, 6)) {
        let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);
        let Ok(bound) = OptimalSufficient.solve(&granted) else { return Ok(()); };
        for sol in [
            ConflictFree::default().solve(&net),
            PrimBased::default().solve(&net),
        ]
        .into_iter()
        .flatten()
        {
            prop_assert!(sol.rate.value() <= bound.rate.value() * (1.0 + 1e-9));
        }
    }

    #[test]
    fn capacity_bookkeeping_is_exact(net in arb_network(5, 6)) {
        // After any successful run, re-derive the per-switch demand from
        // the channels and check it against fresh reservations.
        if let Ok(sol) = ConflictFree::default().solve(&net) {
            let mut cap = CapacityMap::new(&net);
            for c in &sol.channels {
                prop_assert!(cap.admits(c), "tree admitted a channel twice over");
                cap.reserve(c);
            }
            for s in net.switches() {
                prop_assert!(cap.free(s) <= net.kind(s).qubits());
            }
        }
    }

    #[test]
    fn finder_cache_matches_uncached_across_epoch_bumps(net in arb_network(4, 5)) {
        use muerp_core::algorithms::{ChannelFinder, ChannelFinderCache};
        // Drive the capacity map through reserve/release transitions and
        // at every step compare the cached finder (hit, refresh, or
        // first run) against an uncached from-scratch run for every
        // source user and destination.
        let users = net.users().to_vec();
        let mut cap = CapacityMap::new(&net);
        let mut cache = ChannelFinderCache::new(&net);
        let mut reserved: Vec<muerp_core::channel::Channel> = Vec::new();
        for step in 0..4 {
            for &src in &users {
                // Query the same (source, epoch) twice: second call must
                // be a pure cache hit and still agree.
                for _ in 0..2 {
                    let cached = cache.finder(&cap, src);
                    let uncached = ChannelFinder::from_source(&net, &cap, src);
                    for &dst in &users {
                        let (a, b) = (cached.channel_to(dst), uncached.channel_to(dst));
                        prop_assert_eq!(a.is_some(), b.is_some());
                        if let (Some(a), Some(b)) = (a, b) {
                            prop_assert_eq!(&a.path.nodes, &b.path.nodes);
                            prop_assert_eq!(&a.path.edges, &b.path.edges);
                            prop_assert_eq!(a.rate.value(), b.rate.value());
                        }
                    }
                }
            }
            // Mutate capacity for the next round: reserve something new
            // on even steps, release everything on odd ones.
            if step % 2 == 0 {
                if let Some(c) = max_rate_channel(&net, &cap, users[0], users[1]) {
                    cap.reserve(&c);
                    reserved.push(c);
                }
            } else {
                for c in reserved.drain(..) {
                    cap.release(&c);
                }
            }
        }
    }
}
