//! Deterministic work-stealing compute pool.
//!
//! MUERP's solvers issue *batches* of independent, deterministic
//! searches (one Algorithm-1 Dijkstra per user source, one Yen spur per
//! prefix position). This crate runs such a batch across scoped worker
//! threads with three guarantees the solvers rely on:
//!
//! 1. **Index-ordered results** — [`Pool::map`] returns results in the
//!    input order no matter which worker computed what, so a caller that
//!    merges results sequentially observes the exact sequence a
//!    single-threaded run would produce.
//! 2. **Per-worker scratch state** — each worker owns one context value
//!    (e.g. a `DijkstraWorkspace`) built by the caller's factory;
//!    contexts never migrate, so the hot search arenas stay
//!    thread-private and cache-warm.
//! 3. **One causal span tree** — the submitting thread's innermost obs
//!    span is carried into every worker (see
//!    [`qnet_obs::adopt_span_context`]), so spans recorded on workers
//!    parent under the span that submitted the batch instead of
//!    becoming per-thread orphan roots.
//!
//! Work distribution is work-stealing over the vendored crossbeam
//! deques: all task indices start in a shared [`Injector`], workers pull
//! batches into a local FIFO [`Worker`] deque and steal from siblings
//! when both run dry. Because the *assignment* of tasks to workers is
//! racy but the *results* are merged by index, output is bitwise
//! independent of the thread count — `MUERP_THREADS=1` and `=N` produce
//! identical results by construction (the single-thread path runs the
//! very same task closure inline).
//!
//! [`Injector`]: crossbeam::deque::Injector
//! [`Worker`]: crossbeam::deque::Worker

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::deque::{Injector, Stealer, Worker};

/// Environment variable overriding the worker-thread count
/// (`MUERP_THREADS=1` forces the inline sequential path; unset or
/// unparsable falls back to the machine's available parallelism).
pub const THREADS_ENV: &str = "MUERP_THREADS";

/// Process-global programmatic override; `0` means "no override".
/// Sits *between* the env var and auto-detection in priority, so an
/// operator's explicit `MUERP_THREADS=…` always wins.
static DEFAULT_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the *default* pool width for [`Pool::from_env`] callers
/// that did not set [`THREADS_ENV`]. Used by harnesses whose outputs
/// must be bitwise reproducible across hosts with different core counts
/// (e.g. `repro profile` pins 1 so allocation tallies stay exact);
/// `None` removes the override. Explicit [`Pool::with_threads`] calls
/// and a set `MUERP_THREADS` are unaffected.
pub fn set_default_threads(threads: Option<usize>) {
    DEFAULT_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Reads the pool width [`THREADS_ENV`] selects: the variable if set to
/// a positive integer, else the [`set_default_threads`] override, else
/// `std::thread::available_parallelism`.
pub fn threads_from_env() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| match DEFAULT_OVERRIDE.load(Ordering::Relaxed) {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        })
}

/// A fixed-width compute pool.
///
/// The pool is a *configuration*, not a set of live threads: each
/// [`Pool::map`] call spawns scoped workers for the duration of the
/// batch and joins them before returning, so borrowed task inputs need
/// no `'static` bound. Cloning is free.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Pool {
    /// A pool sized by [`threads_from_env`] (`MUERP_THREADS` override,
    /// default = available parallelism).
    pub fn from_env() -> Self {
        Self::with_threads(threads_from_env())
    }

    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads a batch may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when this pool runs everything inline on the caller.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Runs `task` over every item and returns the results **in input
    /// order**.
    ///
    /// `make_ctx` builds one scratch context per worker (called once on
    /// each worker thread, or once on the caller for the inline path);
    /// `task` receives the context, the item by value, and the item's
    /// input index. `task` must be deterministic in `(item, index)` and
    /// must not care which other tasks previously used its context —
    /// the contract a generation-stamped workspace satisfies. Under
    /// that contract the returned vector is bitwise identical for every
    /// thread count.
    ///
    /// With one thread (or fewer than two items) everything runs inline
    /// on the calling thread: no spawn, no locking, spans recorded as
    /// plain children of the current span.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any `task` invocation (the whole batch
    /// joins first).
    pub fn map<T, R, C, FC, FT>(&self, items: Vec<T>, make_ctx: FC, task: FT) -> Vec<R>
    where
        T: Send,
        R: Send,
        FC: Fn() -> C + Sync,
        FT: Fn(&mut C, T, usize) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            let mut ctx = make_ctx();
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| task(&mut ctx, item, i))
                .collect();
        }

        let workers = self.threads.min(n);
        qnet_obs::counter!("pool.batches");
        qnet_obs::counter!("pool.tasks"; n as u64);
        let span_ctx = qnet_obs::span_context();

        // Items live in per-index handoff slots; exactly one worker
        // takes each index, so every take sees `Some`.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let injector: Injector<usize> = Injector::new();
        for i in 0..n {
            injector.push(i);
        }
        let queues: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = queues.iter().map(|q| q.stealer()).collect();

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let produced = crossbeam::scope(|s| {
            let handles: Vec<_> = queues
                .into_iter()
                .enumerate()
                .map(|(w, local)| {
                    let injector = &injector;
                    let stealers = &stealers;
                    let slots = &slots;
                    let make_ctx = &make_ctx;
                    let task = &task;
                    s.spawn(move |_| {
                        let _adopted = qnet_obs::adopt_span_context(span_ctx);
                        let mut ctx = make_ctx();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let next = local
                                .pop()
                                .or_else(|| injector.steal_batch_and_pop(&local).success())
                                .or_else(|| {
                                    stealers
                                        .iter()
                                        .enumerate()
                                        .filter(|&(j, _)| j != w)
                                        .find_map(|(_, st)| st.steal().success())
                                });
                            let Some(i) = next else { break };
                            let item = slots[i]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .take()
                                .expect("each task index is dispatched exactly once");
                            out.push((i, task(&mut ctx, item, i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker result"))
                .collect::<Vec<(usize, R)>>()
        })
        .expect("pool worker panicked");

        for (i, r) in produced {
            debug_assert!(results[i].is_none(), "task {i} produced twice");
            results[i] = Some(r);
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} never ran")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let pool = Pool::with_threads(4);
        let items: Vec<usize> = (0..100).collect();
        let out = pool.map(
            items,
            || (),
            |(), x, i| {
                assert_eq!(x, i);
                x * 3
            },
        );
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn one_thread_matches_many_threads_bitwise() {
        let items: Vec<u64> = (0..57).collect();
        let run = |threads| {
            Pool::with_threads(threads).map(
                items.clone(),
                || 0u64,
                |scratch, x, i| {
                    // Scratch state is reused across tasks on one worker; the
                    // result must not depend on it (contract), only on x, i.
                    *scratch += 1;
                    x.wrapping_mul(0x9e37_79b9) ^ (i as u64)
                },
            )
        };
        let seq = run(1);
        assert_eq!(seq, run(2));
        assert_eq!(seq, run(8));
    }

    #[test]
    fn context_factory_runs_once_per_worker() {
        let made = AtomicUsize::new(0);
        let pool = Pool::with_threads(3);
        let out = pool.map(
            vec![(); 64],
            || made.fetch_add(1, Ordering::Relaxed),
            |_, (), _| (),
        );
        assert_eq!(out.len(), 64);
        // At most one context per worker; at least one worker ran.
        let n = made.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "made {n} contexts");
    }

    #[test]
    fn inline_path_for_single_item_and_single_thread() {
        let made = AtomicUsize::new(0);
        let out = Pool::with_threads(8).map(
            vec![41usize],
            || made.fetch_add(1, Ordering::Relaxed),
            |_, x, _| x + 1,
        );
        assert_eq!(out, vec![42]);
        assert_eq!(made.load(Ordering::Relaxed), 1, "single item runs inline");
        let out = Pool::with_threads(1).map(vec![1, 2, 3], || (), |_, x: i32, _| -x);
        assert_eq!(out, vec![-1, -2, -3]);
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn task_panic_propagates() {
        Pool::with_threads(2).map(
            vec![0usize; 8],
            || (),
            |_, _, i| {
                if i == 5 {
                    panic!("boom");
                }
            },
        );
    }

    #[test]
    fn worker_spans_parent_under_the_submitting_span() {
        // Serialize against other obs-touching tests in this binary.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        qnet_obs::set_level(qnet_obs::ObsLevel::Full);
        qnet_obs::reset_spans();
        {
            let _submit = qnet_obs::span!("pool.test.submit");
            Pool::with_threads(3).map(
                vec![(); 16],
                || (),
                |_, (), _| {
                    let _task = qnet_obs::span!("pool.test.task");
                },
            );
        }
        let report = qnet_obs::RunReport::capture("pool-span-adoption");
        qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
        qnet_obs::reset_spans();
        let submit = report
            .spans
            .iter()
            .position(|s| s.name == "pool.test.submit")
            .expect("submit span recorded");
        let tasks: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.name == "pool.test.task")
            .collect();
        assert_eq!(tasks.len(), 16);
        for t in tasks {
            assert_eq!(
                t.parent,
                Some(submit),
                "worker task spans must join the submitter's causal tree"
            );
        }
    }

    #[test]
    fn env_override_parses() {
        // Only exercises the parser helpers, not the process env.
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert!(Pool::from_env().threads() >= 1);
        assert!(Pool::with_threads(1).is_sequential());
        assert!(!Pool::with_threads(2).is_sequential());
    }
}
