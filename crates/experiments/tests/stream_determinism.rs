//! End-to-end checks of `repro stream`'s engine: every artifact —
//! tables, metrics JSONL, schema-4 run report, Prometheus exposition —
//! must be bitwise stable for a fixed seed, and the windowed series
//! must account for every run-level total.
//!
//! These live in their own integration binary (own process) because
//! [`muerp_experiments::stream::run_workload`] forces the obs level and
//! resets the global registry — it must not race the crate's unit
//! tests.

use muerp_core::extensions::StreamConfig;
use muerp_experiments::cli::StreamArgs;
use muerp_experiments::stream::{run_stream, run_workload, StreamRun};

/// Serializes the tests in this binary; each one resets global state.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_cfg() -> StreamConfig {
    StreamConfig {
        slots: 512,
        window_slots: 32,
        ..StreamConfig::default()
    }
}

fn run(seed: u64) -> StreamRun {
    run_workload(small_cfg(), seed)
}

fn render_report(run: &StreamRun) -> String {
    serde_json::to_string_pretty(&run.report.to_json()).expect("report serializes")
}

#[test]
fn every_artifact_is_bitwise_stable_across_runs() {
    let _serial = serial();
    let a = run(2024);
    let b = run(2024);
    assert_eq!(a.render_text(), b.render_text(), "stdout tables");
    assert_eq!(a.outcome, b.outcome, "stats and windowed series");
    assert_eq!(
        render_report(&a),
        render_report(&b),
        "serialized schema-4 report"
    );
    assert_eq!(
        qnet_obs::prometheus_text(&a.report),
        qnet_obs::prometheus_text(&b.report),
        "prometheus exposition"
    );
}

#[test]
fn windows_account_for_every_run_level_total() {
    let _serial = serial();
    let run = run(7);
    let stats = &run.outcome.stats;
    let series = &run.outcome.series;
    assert_eq!(series.evicted, 0, "the driver sizes the ring for the run");
    assert_eq!(series.total_windows as usize, series.windows.len());
    let sum = |key: &str| -> u64 { series.windows.iter().map(|w| w.rates[key]).sum() };
    assert_eq!(sum("arrivals"), stats.arrived);
    assert_eq!(sum("admitted"), stats.admitted);
    assert_eq!(sum("blocked_no_users"), stats.blocked_no_users);
    assert_eq!(sum("blocked_capacity"), stats.blocked_capacity);
    assert_eq!(
        series.merged_latency("admission_searches").count(),
        stats.admitted + stats.blocked_capacity,
        "one latency sample per routed admission decision"
    );
}

#[test]
fn report_is_schema_four_and_round_trips_with_the_series() {
    let _serial = serial();
    let run = run(3);
    assert_eq!(run.report.schema_version, qnet_obs::SCHEMA_VERSION);
    let value = serde_json::from_str(&render_report(&run)).expect("valid JSON");
    let back = qnet_obs::RunReport::from_json(&value).expect("report shape");
    assert_eq!(back.timeseries.as_ref(), Some(&run.outcome.series));
    // At the default (counters) level the report must carry no spans —
    // spans hold wall-clock timestamps and would break byte-identity.
    assert!(
        run.report.spans.is_empty(),
        "stream reports must stay wall-clock-free at the default level"
    );
}

#[test]
fn written_artifacts_match_between_two_output_dirs() {
    let _serial = serial();
    let base = std::env::temp_dir().join("muerp_stream_determinism_test");
    let args = |dir: &str| StreamArgs {
        slots: 256,
        window: 32,
        seed: 11,
        arrival: 0.35,
        sample_every: 8,
        out: base.join(dir),
    };
    let (_, written_a) = run_stream(&args("a")).expect("run a");
    let (_, written_b) = run_stream(&args("b")).expect("run b");
    assert_eq!(written_a.len(), 5, "two CSVs, JSONL, report, prom");
    assert_eq!(written_a.len(), written_b.len());
    for (pa, pb) in written_a.iter().zip(&written_b) {
        let a = std::fs::read(pa).expect("artifact a readable");
        let b = std::fs::read(pb).expect("artifact b readable");
        assert_eq!(a, b, "{} and {} diverged", pa.display(), pb.display());
    }
    // The JSONL stream has exactly one line per retained window.
    let jsonl = written_a
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .expect("metrics stream written");
    let text = std::fs::read_to_string(jsonl).unwrap();
    assert_eq!(text.lines().count(), 256 / 32);
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("each line parses");
        for key in [
            "window",
            "start_slot",
            "end_slot",
            "gauges",
            "rates",
            "latencies",
        ] {
            assert!(v.get(key).is_some(), "line missing {key}");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn different_seeds_change_the_workload_not_the_shape() {
    let _serial = serial();
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.outcome.stats, b.outcome.stats,
        "distinct seeds must draw distinct workloads"
    );
    assert_eq!(a.tables.len(), b.tables.len());
    for (ta, tb) in a.tables.iter().zip(&b.tables) {
        assert_eq!(ta.id, tb.id);
        assert_eq!(ta.algos, tb.algos);
        assert_eq!(ta.rows.len(), tb.rows.len());
    }
}
