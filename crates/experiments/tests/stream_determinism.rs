//! End-to-end checks of `repro stream`'s engine: every artifact —
//! tables, metrics JSONL, schema-4 run report, Prometheus exposition —
//! must be bitwise stable for a fixed seed, and the windowed series
//! must account for every run-level total.
//!
//! These live in their own integration binary (own process) because
//! [`muerp_experiments::stream::run_workload`] forces the obs level and
//! resets the global registry — it must not race the crate's unit
//! tests.

use muerp_core::extensions::StreamConfig;
use muerp_experiments::cli::StreamArgs;
use muerp_experiments::stream::{run_stream, run_workload, StreamRun};

/// Serializes the tests in this binary; each one resets global state.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_cfg() -> StreamConfig {
    StreamConfig {
        slots: 512,
        window_slots: 32,
        ..StreamConfig::default()
    }
}

/// The small workload with the capacity-churn arm engaged: every 16
/// slots a switch loses 4 qubits for 48 slots, exercising the delta
/// engine's repair/revalidate/recompute paths mid-run.
fn churn_cfg() -> StreamConfig {
    StreamConfig {
        churn_every: 16,
        churn_qubits: 4,
        churn_hold: 48,
        ..small_cfg()
    }
}

fn run(seed: u64) -> StreamRun {
    run_workload(small_cfg(), seed)
}

fn render_report(run: &StreamRun) -> String {
    serde_json::to_string_pretty(&run.report.to_json()).expect("report serializes")
}

#[test]
fn every_artifact_is_bitwise_stable_across_runs() {
    let _serial = serial();
    let a = run(2024);
    let b = run(2024);
    assert_eq!(a.render_text(), b.render_text(), "stdout tables");
    assert_eq!(a.outcome, b.outcome, "stats and windowed series");
    assert_eq!(
        render_report(&a),
        render_report(&b),
        "serialized schema-4 report"
    );
    assert_eq!(
        qnet_obs::prometheus_text(&a.report),
        qnet_obs::prometheus_text(&b.report),
        "prometheus exposition"
    );
}

#[test]
fn windows_account_for_every_run_level_total() {
    let _serial = serial();
    let run = run(7);
    let stats = &run.outcome.stats;
    let series = &run.outcome.series;
    assert_eq!(series.evicted, 0, "the driver sizes the ring for the run");
    assert_eq!(series.total_windows as usize, series.windows.len());
    let sum = |key: &str| -> u64 { series.windows.iter().map(|w| w.rates[key]).sum() };
    assert_eq!(sum("arrivals"), stats.arrived);
    assert_eq!(sum("admitted"), stats.admitted);
    assert_eq!(sum("blocked_no_users"), stats.blocked_no_users);
    assert_eq!(sum("blocked_capacity"), stats.blocked_capacity);
    assert_eq!(
        series.merged_latency("admission_searches").count(),
        stats.admitted + stats.blocked_capacity,
        "one latency sample per routed admission decision"
    );
}

#[test]
fn report_is_schema_four_and_round_trips_with_the_series() {
    let _serial = serial();
    let run = run(3);
    assert_eq!(run.report.schema_version, qnet_obs::SCHEMA_VERSION);
    let value = serde_json::from_str(&render_report(&run)).expect("valid JSON");
    let back = qnet_obs::RunReport::from_json(&value).expect("report shape");
    assert_eq!(back.timeseries.as_ref(), Some(&run.outcome.series));
    // At the default (counters) level the report must carry no spans —
    // spans hold wall-clock timestamps and would break byte-identity.
    assert!(
        run.report.spans.is_empty(),
        "stream reports must stay wall-clock-free at the default level"
    );
}

#[test]
fn written_artifacts_match_between_two_output_dirs() {
    let _serial = serial();
    let base = std::env::temp_dir().join("muerp_stream_determinism_test");
    let args = |dir: &str| StreamArgs {
        slots: 256,
        window: 32,
        seed: 11,
        arrival: 0.35,
        sample_every: 8,
        churn_every: 0,
        out: base.join(dir),
    };
    let (_, written_a) = run_stream(&args("a")).expect("run a");
    let (_, written_b) = run_stream(&args("b")).expect("run b");
    assert_eq!(written_a.len(), 5, "two CSVs, JSONL, report, prom");
    assert_eq!(written_a.len(), written_b.len());
    for (pa, pb) in written_a.iter().zip(&written_b) {
        let a = std::fs::read(pa).expect("artifact a readable");
        let b = std::fs::read(pb).expect("artifact b readable");
        assert_eq!(a, b, "{} and {} diverged", pa.display(), pb.display());
    }
    // The JSONL stream has exactly one line per retained window.
    let jsonl = written_a
        .iter()
        .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .expect("metrics stream written");
    let text = std::fs::read_to_string(jsonl).unwrap();
    assert_eq!(text.lines().count(), 256 / 32);
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("each line parses");
        for key in [
            "window",
            "start_slot",
            "end_slot",
            "gauges",
            "rates",
            "latencies",
        ] {
            assert!(v.get(key).is_some(), "line missing {key}");
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn churned_run_is_bitwise_stable_and_width_invariant() {
    let _serial = serial();
    // Double run: every artifact byte-identical under mid-run deltas.
    let a = run_workload(churn_cfg(), 2024);
    let b = run_workload(churn_cfg(), 2024);
    assert_eq!(a.render_text(), b.render_text(), "churned stdout tables");
    assert_eq!(a.outcome, b.outcome, "churned stats and series");
    assert_eq!(render_report(&a), render_report(&b), "churned report");

    // Same run at pool widths 1 and 4 (the CI delta-smoke matrix runs
    // the binary under MUERP_THREADS=1 and =4; the programmatic default
    // override is the in-process equivalent).
    qnet_pool::set_default_threads(Some(1));
    let narrow = run_workload(churn_cfg(), 2024);
    qnet_pool::set_default_threads(Some(4));
    let wide = run_workload(churn_cfg(), 2024);
    qnet_pool::set_default_threads(None);
    assert_eq!(narrow.render_text(), wide.render_text(), "width 1 vs 4");
    assert_eq!(narrow.outcome, wide.outcome, "width 1 vs 4 outcome");
    assert_eq!(
        render_report(&narrow),
        render_report(&wide),
        "width 1 vs 4 report"
    );
    // And the churn arm actually ran and actually perturbed the run.
    assert_eq!(a.outcome.stats.churn_events, (512 - 1) / 16);
    let calm = run_workload(small_cfg(), 2024);
    assert_ne!(
        a.outcome.stats, calm.outcome.stats,
        "deltas must perturb the run"
    );
    assert_eq!(calm.outcome.stats.churn_events, 0);
}

#[test]
fn churned_report_carries_the_delta_counters() {
    let _serial = serial();
    let run = run_workload(churn_cfg(), 5);
    let stats = &run.outcome.stats;
    assert!(stats.churn_events > 0, "churn must fire");
    assert!(stats.cache.repairs > 0, "deltas must exercise SSSP repair");
    // Schema-4 report: the delta engine's counters are first-class.
    assert_eq!(
        run.report.counter_total("core.stream.churn_events"),
        stats.churn_events
    );
    assert!(run.report.counter_total("graph.delta.repaired") > 0);
    assert!(
        run.report.counter_total("graph.delta.clean")
            + run.report.counter_total("graph.delta.repaired")
            + run.report.counter_total("graph.delta.recomputed")
            > 0
    );
    // The summary table surfaces the same tallies.
    let summary = run
        .tables
        .iter()
        .find(|t| t.id == "stream-summary")
        .expect("summary table present");
    assert_eq!(
        summary.cell("churn-events", "value"),
        Some(stats.churn_events as f64)
    );
    assert_eq!(
        summary.cell("cache-repairs", "value"),
        Some(stats.cache.repairs as f64)
    );
}

#[test]
fn different_seeds_change_the_workload_not_the_shape() {
    let _serial = serial();
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.outcome.stats, b.outcome.stats,
        "distinct seeds must draw distinct workloads"
    );
    assert_eq!(a.tables.len(), b.tables.len());
    for (ta, tb) in a.tables.iter().zip(&b.tables) {
        assert_eq!(ta.id, tb.id);
        assert_eq!(ta.algos, tb.algos);
        assert_eq!(ta.rows.len(), tb.rows.len());
    }
}
