//! Acceptance coverage for the flight recorder: at `MUERP_OBS=trace`,
//! every algorithm of the paper's five-way suite leaves decision events
//! behind when run on the paper-default topology — at least one per
//! tree-growth round for the tree builders, plus candidate/finder events
//! from the shared Algorithm-1 searches.

use std::sync::Mutex;

use muerp_core::algorithms::{refine, BeamSearch, LocalSearchOptions};
use muerp_core::prelude::*;
use muerp_experiments::AlgoKind;
use qnet_obs::TraceEvent;

/// Both tests mutate the process-global level and recorder; run them one
/// at a time even under the default parallel harness.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn every_suite_algorithm_records_decision_events_at_trace_level() {
    let _serial = serial();
    qnet_obs::set_level(qnet_obs::ObsLevel::Trace);
    let net = NetworkSpec::paper_default().build(0);
    let rounds_expected = net.user_count() - 1;

    for algo in AlgoKind::ALL {
        qnet_obs::reset_trace();
        let rate = algo.rate_on(&net, 0);
        assert!((0.0..=1.0).contains(&rate), "{}: {rate}", algo.name());
        let events: Vec<TraceEvent> = qnet_obs::trace_snapshot()
            .into_iter()
            .map(|s| s.event)
            .collect();
        assert!(!events.is_empty(), "{} left no trace events", algo.name());

        // All five route pair selection through Algorithm 1 (directly or
        // via Yen's k-channels), so candidate decisions must appear.
        let candidates = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Candidate { .. }))
            .count();
        assert!(
            candidates > 0,
            "{} recorded no channel-candidate decisions",
            algo.name()
        );

        // The tree builders additionally explain each growth round.
        match algo {
            AlgoKind::Alg3 => {
                let admissions = events
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::Admission { algo: "alg3", .. }))
                    .count();
                assert!(
                    admissions >= rounds_expected,
                    "Alg-3 admissions {admissions} < {rounds_expected} seed channels"
                );
            }
            AlgoKind::Alg4 => {
                let steps = events
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::TreeStep { algo: "alg4", .. }))
                    .count();
                assert_eq!(
                    steps, rounds_expected,
                    "Alg-4 must record one tree step per growth round"
                );
            }
            AlgoKind::Alg2 | AlgoKind::NFusion | AlgoKind::EQCast => {
                // Candidate coverage (asserted above) is their decision
                // vocabulary: channel selection is the only choice they
                // make per user pair.
            }
        }
    }

    qnet_obs::reset_trace();
    qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
}

#[test]
fn beam_and_local_search_extensions_record_their_rounds() {
    let _serial = serial();
    qnet_obs::set_level(qnet_obs::ObsLevel::Trace);
    let net = NetworkSpec::paper_default().build(1);

    qnet_obs::reset_trace();
    BeamSearch::default().solve(&net).ok();
    let beam_rounds = qnet_obs::trace_snapshot()
        .iter()
        .filter(|s| matches!(s.event, TraceEvent::BeamRound { .. }))
        .count();
    assert!(
        beam_rounds >= net.user_count() - 1,
        "beam search recorded {beam_rounds} rounds"
    );

    qnet_obs::reset_trace();
    if let Ok(base) = ConflictFree::default().solve(&net) {
        let refined = refine(&net, base.clone(), LocalSearchOptions::default());
        let moves = qnet_obs::trace_snapshot()
            .iter()
            .filter(|s| matches!(s.event, TraceEvent::MoveAccepted { .. }))
            .count();
        // Refinement may be a no-op on easy instances; when it did
        // improve the tree, the improving moves must be on record.
        if refined.rate > base.rate {
            assert!(moves > 0, "improved tree without recorded moves");
        }
    }

    qnet_obs::reset_trace();
    qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
}
