//! End-to-end checks of `repro profile`'s engine: the deterministic
//! artifacts must be bitwise stable across runs in one process, the
//! attribution must cover the root span's wall time, and the Chrome
//! trace must be well-formed.
//!
//! These live in their own integration binary (own process) because
//! [`muerp_experiments::profile::run_scenario`] forces the obs level
//! and resets the global registry — it must not race the crate's unit
//! tests.

use muerp_experiments::profile::{run_scenario, ProfileRun};
use muerp_experiments::AlgoKind;

/// Serializes the tests in this binary; each one resets global state.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn paper_run(seed: u64) -> ProfileRun {
    run_scenario("paper-default", seed).expect("known scenario")
}

#[test]
fn deterministic_artifacts_are_bitwise_stable() {
    let _serial = serial();
    let a = paper_run(2024);
    let b = paper_run(2024);
    assert_eq!(a.to_csv(), b.to_csv(), "primary CSV must be bitwise stable");
    assert_eq!(a.render_text(), b.render_text(), "stdout table too");
    // The rates themselves are the strongest signal the runs matched.
    assert_eq!(a.rates, b.rates);
}

#[test]
fn different_seeds_change_the_network_not_the_shape() {
    let _serial = serial();
    let a = paper_run(1);
    let b = paper_run(2);
    assert_eq!(a.rates.len(), b.rates.len());
    // Same fact sections appear regardless of seed (values may differ).
    let sections = |r: &ProfileRun| {
        r.deterministic_facts()
            .iter()
            .map(|(s, _, _)| *s)
            .collect::<std::collections::BTreeSet<_>>()
    };
    assert_eq!(sections(&a), sections(&b));
}

#[test]
fn attribution_covers_the_root_span() {
    let _serial = serial();
    let run = paper_run(2024);
    let profile = run.report.profile.as_ref().expect("profile attached");
    assert!(
        profile.coverage() >= 0.95,
        "coverage {:.3} below the 95% bar",
        profile.coverage()
    );
    let root = profile
        .rows
        .iter()
        .find(|r| r.name == "exp.profile.run")
        .expect("root span recorded");
    assert_eq!(root.count, 1);
    // Exactly one wrapper span per algorithm in the suite.
    let wrappers = profile
        .rows
        .iter()
        .filter(|r| r.name.starts_with("exp.profile.") && r.name != "exp.profile.run")
        .count();
    assert_eq!(wrappers, AlgoKind::ALL.len() + 1, "5 algorithms + build");
    // The flight recorder captured solver decisions at trace level.
    assert!(!run.events.is_empty());
    let row_total: u64 = profile.rows.iter().map(|r| r.count).sum();
    assert_eq!(
        row_total,
        run.report.spans.len() as u64,
        "every span lands in a row"
    );
}

#[test]
fn csv_shapes_match_fact_and_row_counts() {
    let _serial = serial();
    let run = paper_run(1);
    let facts = run.deterministic_facts();
    let csv = run.to_csv();
    assert!(csv.starts_with("section,name,value\n"));
    assert_eq!(
        csv.lines().count(),
        facts.len() + 1,
        "header + one line per fact"
    );
    let profile = run.report.profile.as_ref().unwrap();
    assert_eq!(run.times_csv().lines().count(), profile.rows.len() + 1);
    // The times table renders without panicking even for tiny top-N.
    assert!(run.render_times(1).contains("wall-time attribution"));
}

#[test]
fn chrome_trace_is_well_formed_json() {
    let _serial = serial();
    let run = paper_run(2024);
    let trace = qnet_obs::chrome_trace_value(&run.report, &run.events);
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every event carries the required trace-event-format keys.
    for ev in events {
        for key in ["ph", "pid", "tid", "ts", "name"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev}");
        }
    }
    // B/E balance per thread track.
    let mut depth: std::collections::HashMap<u64, i64> = Default::default();
    for ev in events {
        let tid = ev.get("tid").and_then(|t| t.as_u64()).unwrap();
        match ev.get("ph").and_then(|p| p.as_str()).unwrap() {
            "B" => *depth.entry(tid).or_default() += 1,
            "E" => {
                let d = depth.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without B on tid {tid}");
            }
            _ => {}
        }
    }
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced tracks: {depth:?}"
    );
}

#[test]
fn bench_merge_keeps_other_scenarios() {
    let _serial = serial();
    let run = paper_run(3);
    let dir = std::env::temp_dir().join("muerp_profile_bench_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.json");
    std::fs::write(
        &path,
        r#"{"scenarios": {"waxman-240": {"seed": 1, "spans": 9}}}"#,
    )
    .unwrap();
    run.write_bench(&path).expect("merge succeeds");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let scenarios = v.get("scenarios").unwrap();
    assert!(scenarios.get("waxman-240").is_some(), "other entry kept");
    assert!(scenarios.get("paper-default").is_some(), "this run added");
    assert_eq!(v.get("pr").and_then(|p| p.as_u64()), Some(6));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_scenarios_error_before_touching_globals() {
    let _serial = serial();
    assert!(run_scenario("nonsense", 0).is_err());
}
