//! Beyond-paper comparison: the improvement algorithms this
//! reproduction adds (beam search, local-search refinement) against the
//! paper's heuristics, on the cells where greedy commitment hurts.

use muerp_core::algorithms::{BeamSearch, ConflictFree, LocalSearchOptions, PrimBased, Refined};
use muerp_core::model::NetworkSpec;
use muerp_core::solver::RoutingAlgorithm;
use parking_lot::Mutex;
use qnet_topology::TopologyKind;

use crate::runner::TrialConfig;
use crate::table::FigureTable;

fn mean_rate<A: RoutingAlgorithm + Sync>(
    spec: NetworkSpec,
    make: impl Fn(u64) -> A + Sync,
    cfg: TrialConfig,
) -> f64 {
    // Per-worker accumulators, merged under the lock once per worker.
    let total = Mutex::new(0.0f64);
    let next = std::sync::atomic::AtomicU64::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cfg.trials.max(1) as usize);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local = 0.0f64;
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= cfg.trials {
                        break;
                    }
                    let seed = cfg.base_seed + t;
                    let net = spec.build(seed);
                    local += make(seed).solve(&net).map_or(0.0, |s| s.rate.value());
                }
                *total.lock() += local;
            });
        }
    })
    .expect("worker panicked");
    total.into_inner() / cfg.trials as f64
}

/// The paper's heuristics vs. this reproduction's improvement
/// algorithms, across the three stressed cells (tight capacity and
/// hub-heavy topology).
pub fn beyond_paper(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.beyond.beyond_paper");
    let cells: [(&str, TopologyKind, u32); 3] = [
        ("Waxman Q=2", TopologyKind::Waxman, 2),
        ("Waxman Q=4", TopologyKind::Waxman, 4),
        ("Volchenkov Q=2", TopologyKind::Volchenkov, 2),
    ];
    let mut rows = Vec::new();
    for (label, kind, qubits) in cells {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.kind = kind;
        spec.qubits_per_switch = qubits;
        let alg3 = mean_rate(spec, |_| ConflictFree::default(), cfg);
        let alg4 = mean_rate(spec, PrimBased::with_seed, cfg);
        let beam = mean_rate(spec, |_| BeamSearch::default(), cfg);
        let refined = mean_rate(
            spec,
            |_| Refined {
                inner: ConflictFree::default(),
                options: LocalSearchOptions::default(),
            },
            cfg,
        );
        rows.push((label.to_string(), vec![alg3, alg4, beam, refined]));
    }
    FigureTable {
        id: "beyond_paper",
        title: "Beyond the paper: beam search and local-search refinement".into(),
        x_label: "cell",
        algos: vec!["Alg-3", "Alg-4", "Beam(3,3)", "Alg-3+LS"],
        rows,
    }
}

/// The multi-group extension at work: split the default 10 users into
/// independent entanglement groups and route them concurrently over the
/// shared switches, per strategy. Reports the geometric-mean group rate
/// (a fairness-sensitive aggregate) and the worst group's rate.
pub fn multi_group_concurrency(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.beyond.multi_group_concurrency");
    use muerp_core::extensions::{route_groups, GroupStrategy};
    let spec = NetworkSpec::paper_default();
    let splits: [(&str, &[usize]); 3] = [
        ("1 group of 10", &[10]),
        ("2 groups of 5", &[5, 5]),
        ("3 groups (4/3/3)", &[4, 3, 3]),
    ];
    let mut rows = Vec::new();
    for (label, sizes) in splits {
        for strategy in [GroupStrategy::Sequential, GroupStrategy::RoundRobin] {
            let acc = Mutex::new((0.0f64, 0.0f64));
            let next = std::sync::atomic::AtomicU64::new(0);
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(cfg.trials.max(1) as usize);
            crossbeam::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|_| {
                        let mut local = (0.0f64, 0.0f64);
                        loop {
                            let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if t >= cfg.trials {
                                break;
                            }
                            let net = spec.build(cfg.base_seed + t);
                            let users = net.users();
                            let mut groups = Vec::new();
                            let mut start = 0;
                            for &size in sizes {
                                groups.push(users[start..start + size].to_vec());
                                start += size;
                            }
                            let outcomes = route_groups(&net, &groups, strategy);
                            let rates: Vec<f64> =
                                outcomes.iter().map(|o| o.rate().value()).collect();
                            let geo = if rates.contains(&0.0) {
                                0.0
                            } else {
                                rates
                                    .iter()
                                    .map(|r| r.ln())
                                    .sum::<f64>()
                                    .exp()
                                    .powf(1.0 / rates.len() as f64)
                            };
                            let worst = rates.iter().copied().fold(f64::INFINITY, f64::min);
                            local.0 += geo;
                            local.1 += worst;
                        }
                        let mut lock = acc.lock();
                        lock.0 += local.0;
                        lock.1 += local.1;
                    });
                }
            })
            .expect("worker panicked");
            let (geo_sum, worst_sum) = acc.into_inner();
            rows.push((
                format!("{label} / {strategy:?}"),
                vec![geo_sum / cfg.trials as f64, worst_sum / cfg.trials as f64],
            ));
        }
    }
    FigureTable {
        id: "multi_group",
        title: "Concurrent multi-group routing (paper extension)".into(),
        x_label: "split / strategy",
        algos: vec!["geo-mean rate", "worst group"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_group_table_shape_and_tradeoff() {
        let t = multi_group_concurrency(TrialConfig {
            trials: 3,
            base_seed: 21,
        });
        assert_eq!(t.rows.len(), 6);
        for (label, v) in &t.rows {
            assert!(v[0] >= 0.0 && v[1] >= 0.0, "{label}");
            assert!(v[1] <= v[0] + 1e-12, "worst ≤ geo-mean: {label}");
        }
        // Smaller groups have fewer channels each → higher per-group
        // rates: the 2×5 split's geo-mean should beat the single group.
        let one = t.rows[0].1[0];
        let two = t.rows[2].1[0];
        assert!(two >= one, "2 groups of 5 ({two}) vs 1 group of 10 ({one})");
    }

    #[test]
    fn beam_and_refined_dominate_their_bases() {
        let t = beyond_paper(TrialConfig {
            trials: 3,
            base_seed: 11,
        });
        assert_eq!(t.rows.len(), 3);
        for (label, v) in &t.rows {
            let (alg3, _alg4, beam, refined) = (v[0], v[1], v[2], v[3]);
            // Beam carries an anytime guarantee vs Alg-4 (first-user);
            // sampled Alg-4 uses a random seed so compare to refined's
            // base Alg-3 instead, which is deterministic.
            assert!(
                refined >= alg3 * (1.0 - 1e-12),
                "{label}: refinement lost to its base"
            );
            assert!(
                beam > 0.0 || alg3 == 0.0,
                "{label}: beam infeasible where Alg-3 works"
            );
        }
    }
}
