//! `repro stream` — the sustained-load report pipeline.
//!
//! Drives [`simulate_stream`] (diurnal arrivals, heavy-tailed group
//! sizes, hot-spot users) on a paper-default network and turns the
//! windowed telemetry into the full artifact set:
//!
//! * `stream-windows.csv` — one row per time-series window: arrivals,
//!   admissions, blocks, blocking ratio, p99 admission searches, cache
//!   hit rate, active sessions, free qubits;
//! * `stream-summary.csv` — the run-level totals and derived metrics;
//! * `stream.metrics.jsonl` — the raw windowed series, one JSON object
//!   per window ([`qnet_obs::write_metrics_jsonl`]);
//! * `stream.json` — a schema-4 [`qnet_obs::RunReport`] with the
//!   [`TimeSeriesSection`](qnet_obs::TimeSeriesSection) attached;
//! * `stream.prom` — Prometheus-style text exposition of the final
//!   counters and histogram summaries.
//!
//! Everything written is deterministic for a fixed seed: the virtual
//! clock, the search-count latency proxy, and the sequential admission
//! loop are all wall-clock- and thread-count-independent, so CI
//! byte-compares double runs (and `MUERP_THREADS=1` vs `4`).
//! Wall-clock throughput (admissions/sec) exists only on stderr, via
//! [`StreamRun::render_throughput`].

use std::path::{Path, PathBuf};
use std::time::Duration;

use muerp_core::extensions::{simulate_stream, StreamConfig, StreamOutcome};
use muerp_core::model::NetworkSpec;

use crate::cli::StreamArgs;
use crate::table::FigureTable;

/// Everything one streaming run produces in memory.
#[derive(Clone, Debug)]
pub struct StreamRun {
    /// The workload configuration that ran.
    pub cfg: StreamConfig,
    /// Seed of the network build and the workload RNG.
    pub seed: u64,
    /// Stats and windowed series from the core driver.
    pub outcome: StreamOutcome,
    /// The windows and summary tables (deterministic stdout/CSV).
    pub tables: Vec<FigureTable>,
    /// The captured schema-4 report, time-series section attached.
    pub report: qnet_obs::RunReport,
    /// Wall-clock duration of the simulation (stderr only).
    pub wall: Duration,
}

impl StreamRun {
    /// The deterministic stdout block: both tables as aligned text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            out.push_str(&table.render_text());
            out.push('\n');
        }
        out
    }

    /// Wall-clock throughput line (jitters run to run — stderr only).
    pub fn render_throughput(&self) -> String {
        let secs = self.wall.as_secs_f64().max(1e-9);
        format!(
            "sustained load: {} slot(s) in {:.1?} — {:.0} slots/sec, {:.0} admissions/sec\n",
            self.cfg.slots,
            self.wall,
            self.cfg.slots as f64 / secs,
            self.outcome.stats.admitted as f64 / secs,
        )
    }
}

/// Builds the per-window and summary tables for `outcome`.
pub fn stream_tables(cfg: &StreamConfig, seed: u64, outcome: &StreamOutcome) -> Vec<FigureTable> {
    let stats = &outcome.stats;
    let window_rows: Vec<(String, Vec<f64>)> = outcome
        .series
        .windows
        .iter()
        .map(|w| {
            let rate = |key: &str| w.rates.get(key).copied().unwrap_or(0) as f64;
            let gauge = |key: &str| w.gauges.get(key).copied().unwrap_or(0.0);
            let arrivals = rate("arrivals");
            let blocked = rate("blocked_no_users") + rate("blocked_capacity");
            let p99 = w
                .latencies
                .get("admission_searches")
                .map_or(0.0, |h| h.quantiles().2);
            (
                w.index.to_string(),
                vec![
                    arrivals,
                    rate("admitted"),
                    blocked,
                    if arrivals > 0.0 {
                        blocked / arrivals
                    } else {
                        0.0
                    },
                    p99,
                    gauge("cache_hit_rate"),
                    gauge("active_sessions"),
                    gauge("free_qubits"),
                ],
            )
        })
        .collect();

    let merged = outcome.series.merged_latency("admission_searches");
    let (p50, _, p99) = merged.quantiles();
    let summary_rows: Vec<(String, Vec<f64>)> = vec![
        ("arrived".into(), vec![stats.arrived as f64]),
        ("admitted".into(), vec![stats.admitted as f64]),
        (
            "blocked-no-users".into(),
            vec![stats.blocked_no_users as f64],
        ),
        (
            "blocked-capacity".into(),
            vec![stats.blocked_capacity as f64],
        ),
        ("blocking-ratio".into(), vec![stats.blocking_ratio()]),
        ("mean-session-rate".into(), vec![stats.mean_session_rate]),
        (
            "mean-active-sessions".into(),
            vec![stats.mean_active_sessions],
        ),
        (
            "peak-active-sessions".into(),
            vec![stats.peak_active_sessions as f64],
        ),
        ("total-searches".into(), vec![stats.total_searches as f64]),
        ("p50-admission-searches".into(), vec![p50]),
        ("p99-admission-searches".into(), vec![p99]),
        ("cache-hit-rate".into(), vec![stats.cache.hit_rate()]),
        ("cache-repairs".into(), vec![stats.cache.repairs as f64]),
        ("churn-events".into(), vec![stats.churn_events as f64]),
        ("trace-sampled-out".into(), vec![stats.sampled_out as f64]),
    ];

    vec![
        FigureTable {
            id: "stream-windows",
            title: format!(
                "Sustained load over {} slots ({}-slot windows, seed {seed})",
                cfg.slots, cfg.window_slots
            ),
            x_label: "window",
            algos: vec![
                "arrivals",
                "admitted",
                "blocked",
                "blocking-ratio",
                "p99-searches",
                "hit-rate",
                "active",
                "free-qubits",
            ],
            rows: window_rows,
        },
        FigureTable {
            id: "stream-summary",
            title: "Streaming run summary".into(),
            x_label: "metric",
            algos: vec!["value"],
            rows: summary_rows,
        },
    ]
}

/// Runs the streaming workload in memory: resets the process-global
/// observability state, simulates, and captures the schema-4 report
/// with the time-series section attached.
///
/// Unless `MUERP_OBS` pins a level, runs at `counters` — the report
/// then carries no spans (and thus no wall-clock), keeping every
/// artifact byte-deterministic.
pub fn run_workload(cfg: StreamConfig, seed: u64) -> StreamRun {
    if std::env::var_os("MUERP_OBS").is_none() {
        qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
    }
    qnet_obs::global().reset();
    qnet_obs::reset_spans();
    qnet_obs::reset_trace();

    let net = NetworkSpec::paper_default().build(seed);
    let started = std::time::Instant::now();
    let outcome = simulate_stream(&net, cfg, seed);
    let wall = started.elapsed();
    let report = qnet_obs::RunReport::capture("stream").with_timeseries(outcome.series.clone());
    let tables = stream_tables(&cfg, seed, &outcome);
    StreamRun {
        cfg,
        seed,
        outcome,
        tables,
        report,
        wall,
    }
}

/// Runs `repro stream` end to end and writes every artifact into
/// `args.out`. Returns the run and the written paths.
///
/// # Errors
///
/// Returns a message when the output directory or any artifact cannot
/// be written.
pub fn run_stream(args: &StreamArgs) -> Result<(StreamRun, Vec<PathBuf>), String> {
    let run = run_workload(args.config(), args.seed);
    let written = write_artifacts(&args.out, &run)?;
    Ok((run, written))
}

/// Writes the CSVs, metrics stream, run report, and Prometheus
/// exposition into `dir`.
fn write_artifacts(dir: &Path, run: &StreamRun) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for table in &run.tables {
        let path = dir.join(format!("{}.csv", table.id));
        std::fs::write(&path, table.to_csv())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path);
    }
    written.push(
        qnet_obs::write_metrics_jsonl(dir, "stream", &run.outcome.series)
            .map_err(|e| format!("cannot write metrics stream: {e}"))?,
    );
    written.push(
        qnet_obs::write_report(dir, &run.report)
            .map_err(|e| format!("cannot write run report: {e}"))?,
    );
    written.push(
        qnet_obs::write_prometheus(dir, "stream", &run.report)
            .map_err(|e| format!("cannot write prometheus exposition: {e}"))?,
    );
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> StreamConfig {
        StreamConfig {
            slots: 256,
            window_slots: 32,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn tables_have_the_documented_shape() {
        let net = NetworkSpec::paper_default().build(3);
        let outcome = simulate_stream(&net, small_cfg(), 3);
        let tables = stream_tables(&small_cfg(), 3, &outcome);
        assert_eq!(tables.len(), 2);
        let windows = &tables[0];
        assert_eq!(windows.id, "stream-windows");
        assert_eq!(windows.rows.len(), 256 / 32);
        assert_eq!(windows.algos.len(), 8);
        let summary = &tables[1];
        assert_eq!(summary.id, "stream-summary");
        assert_eq!(summary.algos, vec!["value"]);
        assert_eq!(
            summary.cell("arrived", "value"),
            Some(outcome.stats.arrived as f64)
        );
        assert_eq!(
            summary.cell("blocking-ratio", "value"),
            Some(outcome.stats.blocking_ratio())
        );
    }

    #[test]
    fn window_rows_sum_to_the_summary_totals() {
        let net = NetworkSpec::paper_default().build(4);
        let outcome = simulate_stream(&net, small_cfg(), 4);
        let tables = stream_tables(&small_cfg(), 4, &outcome);
        let col = |name: &str| -> f64 {
            let i = tables[0].algos.iter().position(|a| *a == name).unwrap();
            tables[0].rows.iter().map(|(_, row)| row[i]).sum()
        };
        assert_eq!(col("arrivals"), outcome.stats.arrived as f64);
        assert_eq!(col("admitted"), outcome.stats.admitted as f64);
        assert_eq!(col("blocked"), outcome.stats.blocked() as f64);
    }
}
