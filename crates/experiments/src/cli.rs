//! Argument parsing for the `repro` binary, factored out for testing.

use std::path::PathBuf;

use crate::runner::TrialConfig;

/// Everything the `repro` binary accepts.
pub const ALL_IDS: [&str; 11] = [
    "fig5",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "headline",
    "ablations",
    "convergence",
    "beyond",
];

/// Parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    /// Experiment ids to run, in order, deduplicated.
    pub which: Vec<String>,
    /// Trial configuration.
    pub cfg: TrialConfig,
    /// Optional CSV output directory.
    pub out: Option<PathBuf>,
    /// Write one observability report per suite into `results/obs/`
    /// (raising the level to `full` unless `MUERP_OBS` pins it).
    pub obs_report: bool,
}

/// Parses the arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown ids/flags, missing flag
/// values, or an empty selection.
pub fn parse<I>(argv: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut which = Vec::new();
    let mut cfg = TrialConfig::default();
    let mut out = None;
    let mut obs_report = false;
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trials" => {
                let v = argv.next().ok_or("--trials needs a value")?;
                cfg.trials = v.parse().map_err(|e| format!("bad --trials: {e}"))?;
                if cfg.trials == 0 {
                    return Err("--trials must be positive".into());
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                cfg.base_seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--obs-report" => obs_report = true,
            "all" => which.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => which.push(id.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if which.is_empty() {
        return Err(format!(
            "usage: repro <{}|all> [--trials N] [--seed S] [--out DIR] [--obs-report]",
            ALL_IDS.join("|")
        ));
    }
    which.dedup();
    Ok(Args {
        which,
        cfg,
        out,
        obs_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_single_figure() {
        let a = parse(s(&["fig5"])).unwrap();
        assert_eq!(a.which, vec!["fig5"]);
        assert_eq!(a.cfg, TrialConfig::default());
        assert_eq!(a.out, None);
    }

    #[test]
    fn parses_flags_in_any_order() {
        let a = parse(s(&[
            "--trials", "7", "fig8a", "--seed", "3", "--out", "/tmp/x",
        ]))
        .unwrap();
        assert_eq!(a.cfg.trials, 7);
        assert_eq!(a.cfg.base_seed, 3);
        assert_eq!(a.out, Some(PathBuf::from("/tmp/x")));
        assert_eq!(a.which, vec!["fig8a"]);
        assert!(!a.obs_report);
    }

    #[test]
    fn parses_obs_report_flag() {
        let a = parse(s(&["--obs-report", "fig5"])).unwrap();
        assert!(a.obs_report);
        assert_eq!(a.which, vec!["fig5"]);
    }

    #[test]
    fn all_expands_and_dedups() {
        let a = parse(s(&["fig5", "all"])).unwrap();
        // "fig5" then the full list; consecutive duplicates removed.
        assert_eq!(a.which.len(), 1 + ALL_IDS.len() - 1);
        assert_eq!(a.which[0], "fig5");
    }

    #[test]
    fn rejects_unknown_id() {
        let e = parse(s(&["fig9"])).unwrap_err();
        assert!(e.contains("unknown argument: fig9"));
    }

    #[test]
    fn rejects_zero_trials_and_missing_values() {
        assert!(parse(s(&["fig5", "--trials", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(s(&["fig5", "--trials"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(s(&["fig5", "--trials", "abc"]))
            .unwrap_err()
            .contains("bad --trials"));
        assert!(parse(s(&["fig5", "--out"]))
            .unwrap_err()
            .contains("directory"));
    }

    #[test]
    fn empty_selection_prints_usage() {
        let e = parse(s(&[])).unwrap_err();
        assert!(e.starts_with("usage:"));
        for id in ALL_IDS {
            assert!(e.contains(id), "usage must list {id}");
        }
    }
}
