//! Argument parsing for the `repro` binary, factored out for testing.

use std::path::PathBuf;

use crate::runner::TrialConfig;

/// Everything the `repro` binary accepts.
pub const ALL_IDS: [&str; 11] = [
    "fig5",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "headline",
    "ablations",
    "convergence",
    "beyond",
];

/// Parsed command line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Args {
    /// Experiment ids to run, in order, deduplicated.
    pub which: Vec<String>,
    /// Trial configuration.
    pub cfg: TrialConfig,
    /// Optional CSV output directory.
    pub out: Option<PathBuf>,
    /// Write one observability report per suite into `results/obs/`
    /// (raising the level to `full` unless `MUERP_OBS` pins it).
    pub obs_report: bool,
}

/// A full `repro` invocation: either the default experiment runner or
/// one of the subcommands.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run experiment suites (the default, historical behavior).
    Run(Args),
    /// `repro obs-diff <baseline.json> <candidate.json>`: compare two
    /// observability run reports and fail on regressions.
    ObsDiff(ObsDiffArgs),
    /// `repro fuzz --budget <n>`: sweep random topology specs through
    /// generate→solve→audit and report shrunk counterexamples.
    Fuzz(FuzzArgs),
    /// `repro churn --trials N --failures F`: the survivability battery
    /// (do-nothing vs. repair vs. full re-solve under seeded faults).
    Churn(ChurnArgs),
    /// `repro profile <scenario>`: run one scenario under full
    /// instrumentation and emit the perf-attribution report (text, CSV,
    /// schema-3 run report, Chrome trace).
    Profile(ProfileArgs),
    /// `repro stream`: the sustained-load streaming workload driver —
    /// windowed telemetry tables, a JSONL metrics stream, a schema-4
    /// run report, and a Prometheus-style exposition of the final
    /// counters.
    Stream(StreamArgs),
    /// `repro serve`: the batched admission service — per-round
    /// decision tables, policy-ordered admission with backpressure
    /// shedding, round-level telemetry, and byte-deterministic
    /// artifacts.
    Serve(ServeArgs),
}

/// Arguments of the `serve` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Virtual-time slots to serve.
    pub slots: u64,
    /// Slots per admission round.
    pub round: u64,
    /// Bounded-queue capacity per round.
    pub queue: usize,
    /// Admission policy name (`fcfs`, `smallest`, `weighted`).
    pub policy: String,
    /// Seed for the network build and the request stream.
    pub seed: u64,
    /// Baseline per-slot arrival probability (diurnally modulated).
    pub arrival: f64,
    /// Output directory for the CSVs, metrics stream, report, and
    /// Prometheus exposition.
    pub out: PathBuf,
}

impl ServeArgs {
    /// The serve configuration these arguments select.
    ///
    /// # Errors
    ///
    /// Returns a message naming the policy when it is unknown.
    pub fn config(&self) -> Result<muerp_serve::ServeConfig, String> {
        let policy = muerp_serve::PolicyKind::parse(&self.policy)
            .ok_or_else(|| format!("unknown policy: {} (fcfs|smallest|weighted)", self.policy))?;
        Ok(muerp_serve::ServeConfig {
            stream: muerp_core::extensions::StreamConfig {
                slots: self.slots,
                base_arrival: self.arrival,
                ..muerp_core::extensions::StreamConfig::default()
            },
            round_slots: self.round,
            queue_capacity: self.queue,
            policy,
        })
    }
}

/// Arguments of the `stream` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamArgs {
    /// Virtual-time slots to simulate.
    pub slots: u64,
    /// Time-series window width in slots.
    pub window: u64,
    /// Seed for the network build and the workload RNG.
    pub seed: u64,
    /// Baseline per-slot arrival probability (diurnally modulated).
    pub arrival: f64,
    /// Trace-sampling period for `Blocked` decision points.
    pub sample_every: u64,
    /// Capacity-churn period in slots (`0` disables the churn arm).
    pub churn_every: u64,
    /// Output directory for the CSVs, metrics stream, report, and
    /// Prometheus exposition.
    pub out: PathBuf,
}

impl StreamArgs {
    /// The streaming workload configuration these arguments select
    /// (everything not flag-settable keeps the core defaults).
    pub fn config(&self) -> muerp_core::extensions::StreamConfig {
        muerp_core::extensions::StreamConfig {
            slots: self.slots,
            window_slots: self.window,
            base_arrival: self.arrival,
            sample_every: self.sample_every,
            churn_every: self.churn_every,
            ..muerp_core::extensions::StreamConfig::default()
        }
    }
}

/// Scenarios the `profile` subcommand accepts.
pub const PROFILE_SCENARIOS: [&str; 3] = ["paper-default", "waxman-240", "waxman-2400"];

/// Arguments of the `profile` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileArgs {
    /// Scenario id (one of [`PROFILE_SCENARIOS`]).
    pub scenario: String,
    /// Seed for the profiled solve.
    pub seed: u64,
    /// Output directory for the CSVs, report, and trace.
    pub out: PathBuf,
    /// Rows shown in the top-by-self-time table.
    pub top: usize,
    /// Optional path for the tracked attribution-numbers JSON
    /// (`BENCH_pr6.json` shape).
    pub bench_out: Option<PathBuf>,
}

/// Arguments of the `fuzz` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzArgs {
    /// Number of seeded trials to run.
    pub budget: usize,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Also run the churn oracle (failure + repair) per trial.
    pub churn: bool,
    /// Also run the delta oracle (capacity deltas through the dirty-set
    /// channel-finder cache vs. cold recomputation) per trial.
    pub delta: bool,
    /// Also run the serve oracle (batched admission vs. the sequential
    /// FCFS reference on a seeded request script) per trial.
    pub serve: bool,
    /// Where to write the JSON counterexample report on failure.
    pub out: PathBuf,
}

impl FuzzArgs {
    /// The fuzz configuration these arguments select.
    pub fn config(&self) -> qnet_conformance::FuzzConfig {
        qnet_conformance::FuzzConfig {
            budget: self.budget,
            base_seed: self.base_seed,
            churn: self.churn,
            delta: self.delta,
            serve: self.serve,
        }
    }
}

/// Arguments of the `churn` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnArgs {
    /// The churn battery configuration.
    pub cfg: crate::churn::ChurnConfig,
    /// Optional CSV output directory.
    pub out: Option<PathBuf>,
    /// Write an observability report (and trace, at `MUERP_OBS=trace`)
    /// into `results/obs/`, like the experiment runner.
    pub obs_report: bool,
}

/// Arguments of the `obs-diff` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsDiffArgs {
    /// The reference report (usually a tracked baseline).
    pub baseline: PathBuf,
    /// The freshly produced report to judge.
    pub candidate: PathBuf,
    /// Span slowdown ratio flagged as a regression.
    pub span_ratio: f64,
    /// Counter drift ratio flagged as a regression.
    pub counter_ratio: f64,
    /// Spans whose larger side is below this many µs are never flagged.
    pub min_span_us: u64,
    /// Print the table but always exit 0 (CI advisory mode).
    pub warn_only: bool,
    /// Opt-in gate: fail on histogram p50/p90/p99 drift beyond this
    /// ratio (`None` keeps quantile movement informational).
    pub hist_ratio: Option<f64>,
}

impl ObsDiffArgs {
    /// The diff thresholds these arguments select.
    pub fn options(&self) -> qnet_obs::DiffOptions {
        qnet_obs::DiffOptions {
            span_ratio: self.span_ratio,
            counter_ratio: self.counter_ratio,
            min_span_us: self.min_span_us,
            hist_ratio: self.hist_ratio,
            ..qnet_obs::DiffOptions::default()
        }
    }
}

/// Parses a full command line (without the program name), dispatching on
/// an optional leading subcommand.
///
/// # Errors
///
/// Returns a human-readable message on unknown subcommands/ids/flags,
/// missing flag values, or an empty selection.
pub fn parse_command<I>(argv: I) -> Result<Command, String>
where
    I: IntoIterator<Item = String>,
{
    let mut argv = argv.into_iter().peekable();
    if argv.peek().map(String::as_str) == Some("obs-diff") {
        argv.next();
        return parse_obs_diff(argv).map(Command::ObsDiff);
    }
    if argv.peek().map(String::as_str) == Some("fuzz") {
        argv.next();
        return parse_fuzz(argv).map(Command::Fuzz);
    }
    if argv.peek().map(String::as_str) == Some("churn") {
        argv.next();
        return parse_churn(argv).map(Command::Churn);
    }
    if argv.peek().map(String::as_str) == Some("profile") {
        argv.next();
        return parse_profile(argv).map(Command::Profile);
    }
    if argv.peek().map(String::as_str) == Some("stream") {
        argv.next();
        return parse_stream(argv).map(Command::Stream);
    }
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        return parse_serve(argv).map(Command::Serve);
    }
    parse(argv).map(Command::Run)
}

fn parse_serve<I>(argv: I) -> Result<ServeArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut slots = 2048u64;
    let mut round = 32u64;
    let mut queue = 16usize;
    let mut policy = "fcfs".to_string();
    let mut seed = 7u64;
    let mut arrival = 0.35f64;
    let mut out = PathBuf::from("results/serve");
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--slots" => {
                let v = argv.next().ok_or("--slots needs a value")?;
                slots = v.parse().map_err(|e| format!("bad --slots: {e}"))?;
                if slots == 0 {
                    return Err("--slots must be positive".into());
                }
            }
            "--round" => {
                let v = argv.next().ok_or("--round needs a value")?;
                round = v.parse().map_err(|e| format!("bad --round: {e}"))?;
                if round == 0 {
                    return Err("--round must be positive".into());
                }
            }
            "--queue" => {
                let v = argv.next().ok_or("--queue needs a value")?;
                queue = v.parse().map_err(|e| format!("bad --queue: {e}"))?;
                if queue == 0 {
                    return Err("--queue must be positive".into());
                }
            }
            "--policy" => {
                policy = argv.next().ok_or("--policy needs a value")?;
                if muerp_serve::PolicyKind::parse(&policy).is_none() {
                    return Err(format!("unknown policy: {policy} (fcfs|smallest|weighted)"));
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--arrival" => {
                let v = argv.next().ok_or("--arrival needs a value")?;
                arrival = v.parse().map_err(|e| format!("bad --arrival: {e}"))?;
                if !(0.0..=1.0).contains(&arrival) {
                    return Err("--arrival must be in [0, 1]".into());
                }
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = PathBuf::from(v);
            }
            other => {
                return Err(format!(
                    "unknown serve argument: {other}\nusage: repro serve [--slots N] \
                 [--round R] [--queue Q] [--policy fcfs|smallest|weighted] [--seed S] \
                 [--arrival P] [--out DIR]"
                ))
            }
        }
    }
    Ok(ServeArgs {
        slots,
        round,
        queue,
        policy,
        seed,
        arrival,
        out,
    })
}

fn parse_stream<I>(argv: I) -> Result<StreamArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut slots = 2048u64;
    let mut window = 64u64;
    let mut seed = 2024u64;
    let mut arrival = 0.35f64;
    let mut sample_every = 8u64;
    let mut churn_every = 0u64;
    let mut out = PathBuf::from("results/stream");
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--slots" => {
                let v = argv.next().ok_or("--slots needs a value")?;
                slots = v.parse().map_err(|e| format!("bad --slots: {e}"))?;
                if slots == 0 {
                    return Err("--slots must be positive".into());
                }
            }
            "--window" => {
                let v = argv.next().ok_or("--window needs a value")?;
                window = v.parse().map_err(|e| format!("bad --window: {e}"))?;
                if window == 0 {
                    return Err("--window must be positive".into());
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--arrival" => {
                let v = argv.next().ok_or("--arrival needs a value")?;
                arrival = v.parse().map_err(|e| format!("bad --arrival: {e}"))?;
                if !(0.0..=1.0).contains(&arrival) {
                    return Err("--arrival must be in [0, 1]".into());
                }
            }
            "--sample-every" => {
                let v = argv.next().ok_or("--sample-every needs a value")?;
                sample_every = v.parse().map_err(|e| format!("bad --sample-every: {e}"))?;
                if sample_every == 0 {
                    return Err("--sample-every must be positive".into());
                }
            }
            "--churn-every" => {
                let v = argv.next().ok_or("--churn-every needs a value")?;
                churn_every = v.parse().map_err(|e| format!("bad --churn-every: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = PathBuf::from(v);
            }
            other => {
                return Err(format!(
                    "unknown stream argument: {other}\nusage: repro stream [--slots N] \
                 [--window W] [--seed S] [--arrival P] [--sample-every N] \
                 [--churn-every N] [--out DIR]"
                ))
            }
        }
    }
    Ok(StreamArgs {
        slots,
        window,
        seed,
        arrival,
        sample_every,
        churn_every,
        out,
    })
}

fn parse_profile<I>(argv: I) -> Result<ProfileArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let usage = || {
        format!(
            "usage: repro profile <{}> [--seed S] [--out DIR] [--top N] [--bench-out FILE]",
            PROFILE_SCENARIOS.join("|")
        )
    };
    let mut scenario: Option<String> = None;
    let mut seed = 2024u64;
    let mut out = PathBuf::from("results/profile");
    let mut top = 15usize;
    let mut bench_out = None;
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = PathBuf::from(v);
            }
            "--top" => {
                let v = argv.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|e| format!("bad --top: {e}"))?;
                if top == 0 {
                    return Err("--top must be positive".into());
                }
            }
            "--bench-out" => {
                let v = argv.next().ok_or("--bench-out needs a file path")?;
                bench_out = Some(PathBuf::from(v));
            }
            id if PROFILE_SCENARIOS.contains(&id) => {
                if scenario.is_some() {
                    return Err("profile takes exactly one scenario".into());
                }
                scenario = Some(id.to_string());
            }
            other => return Err(format!("unknown profile argument: {other}\n{}", usage())),
        }
    }
    let scenario = scenario.ok_or_else(usage)?;
    Ok(ProfileArgs {
        scenario,
        seed,
        out,
        top,
        bench_out,
    })
}

fn parse_churn<I>(argv: I) -> Result<ChurnArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut cfg = crate::churn::ChurnConfig::default();
    let mut out = None;
    let mut obs_report = false;
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trials" => {
                let v = argv.next().ok_or("--trials needs a value")?;
                cfg.trials = v.parse().map_err(|e| format!("bad --trials: {e}"))?;
                if cfg.trials == 0 {
                    return Err("--trials must be positive".into());
                }
            }
            "--failures" => {
                let v = argv.next().ok_or("--failures needs a value")?;
                cfg.failures = v.parse().map_err(|e| format!("bad --failures: {e}"))?;
                if cfg.failures == 0 {
                    return Err("--failures must be positive".into());
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                cfg.base_seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--slots" => {
                let v = argv.next().ok_or("--slots needs a value")?;
                cfg.sim_slots = v.parse().map_err(|e| format!("bad --slots: {e}"))?;
                if cfg.sim_slots == 0 {
                    return Err("--slots must be positive".into());
                }
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--obs-report" => obs_report = true,
            other => return Err(format!("unknown churn argument: {other}")),
        }
    }
    Ok(ChurnArgs {
        cfg,
        out,
        obs_report,
    })
}

fn parse_fuzz<I>(argv: I) -> Result<FuzzArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut budget: Option<usize> = None;
    let mut base_seed = 0u64;
    let mut churn = false;
    let mut delta = false;
    let mut serve = false;
    let mut out = PathBuf::from("fuzz-counterexample.json");
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--churn" => churn = true,
            "--delta" => delta = true,
            "--serve" => serve = true,
            "--budget" => {
                let v = argv.next().ok_or("--budget needs a value")?;
                let n: usize = v.parse().map_err(|e| format!("bad --budget: {e}"))?;
                if n == 0 {
                    return Err("--budget must be positive".into());
                }
                budget = Some(n);
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                base_seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a file path")?;
                out = PathBuf::from(v);
            }
            other => return Err(format!("unknown fuzz argument: {other}")),
        }
    }
    let budget = budget.ok_or(
        "usage: repro fuzz --budget <n> [--seed S] [--churn] [--delta] [--serve] [--out FILE]"
            .to_string(),
    )?;
    Ok(FuzzArgs {
        budget,
        base_seed,
        churn,
        delta,
        serve,
        out,
    })
}

fn parse_obs_diff<I>(argv: I) -> Result<ObsDiffArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let defaults = qnet_obs::DiffOptions::default();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut span_ratio = defaults.span_ratio;
    let mut counter_ratio = defaults.counter_ratio;
    let mut min_span_us = defaults.min_span_us;
    let mut warn_only = false;
    let mut hist_ratio = None;
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--span-ratio" => {
                let v = argv.next().ok_or("--span-ratio needs a value")?;
                span_ratio = v.parse().map_err(|e| format!("bad --span-ratio: {e}"))?;
                if !span_ratio.is_finite() || span_ratio <= 1.0 {
                    return Err("--span-ratio must be greater than 1".into());
                }
            }
            "--counter-ratio" => {
                let v = argv.next().ok_or("--counter-ratio needs a value")?;
                counter_ratio = v.parse().map_err(|e| format!("bad --counter-ratio: {e}"))?;
                if !counter_ratio.is_finite() || counter_ratio <= 1.0 {
                    return Err("--counter-ratio must be greater than 1".into());
                }
            }
            "--min-span-us" => {
                let v = argv.next().ok_or("--min-span-us needs a value")?;
                min_span_us = v.parse().map_err(|e| format!("bad --min-span-us: {e}"))?;
            }
            "--hist-ratio" => {
                let v = argv.next().ok_or("--hist-ratio needs a value")?;
                let r: f64 = v.parse().map_err(|e| format!("bad --hist-ratio: {e}"))?;
                if !r.is_finite() || r <= 1.0 {
                    return Err("--hist-ratio must be greater than 1".into());
                }
                hist_ratio = Some(r);
            }
            "--warn-only" => warn_only = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown obs-diff flag: {flag}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, candidate] = <[PathBuf; 2]>::try_from(paths).map_err(|got| {
        format!(
            "usage: repro obs-diff <baseline.json> <candidate.json> \
             [--span-ratio R] [--counter-ratio R] [--min-span-us N] [--hist-ratio R] \
             [--warn-only] (got {} path(s))",
            got.len()
        )
    })?;
    Ok(ObsDiffArgs {
        baseline,
        candidate,
        span_ratio,
        counter_ratio,
        min_span_us,
        warn_only,
        hist_ratio,
    })
}

/// Parses the runner arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown ids/flags, missing flag
/// values, or an empty selection.
pub fn parse<I>(argv: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut which = Vec::new();
    let mut cfg = TrialConfig::default();
    let mut out = None;
    let mut obs_report = false;
    let mut argv = argv.into_iter();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trials" => {
                let v = argv.next().ok_or("--trials needs a value")?;
                cfg.trials = v.parse().map_err(|e| format!("bad --trials: {e}"))?;
                if cfg.trials == 0 {
                    return Err("--trials must be positive".into());
                }
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                cfg.base_seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                let v = argv.next().ok_or("--out needs a directory")?;
                out = Some(PathBuf::from(v));
            }
            "--obs-report" => obs_report = true,
            "all" => which.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => which.push(id.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if which.is_empty() {
        return Err(format!(
            "usage: repro <{}|all> [--trials N] [--seed S] [--out DIR] [--obs-report]",
            ALL_IDS.join("|")
        ));
    }
    which.dedup();
    Ok(Args {
        which,
        cfg,
        out,
        obs_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_single_figure() {
        let a = parse(s(&["fig5"])).unwrap();
        assert_eq!(a.which, vec!["fig5"]);
        assert_eq!(a.cfg, TrialConfig::default());
        assert_eq!(a.out, None);
    }

    #[test]
    fn parses_flags_in_any_order() {
        let a = parse(s(&[
            "--trials", "7", "fig8a", "--seed", "3", "--out", "/tmp/x",
        ]))
        .unwrap();
        assert_eq!(a.cfg.trials, 7);
        assert_eq!(a.cfg.base_seed, 3);
        assert_eq!(a.out, Some(PathBuf::from("/tmp/x")));
        assert_eq!(a.which, vec!["fig8a"]);
        assert!(!a.obs_report);
    }

    #[test]
    fn parses_obs_report_flag() {
        let a = parse(s(&["--obs-report", "fig5"])).unwrap();
        assert!(a.obs_report);
        assert_eq!(a.which, vec!["fig5"]);
    }

    #[test]
    fn all_expands_and_dedups() {
        let a = parse(s(&["fig5", "all"])).unwrap();
        // "fig5" then the full list; consecutive duplicates removed.
        assert_eq!(a.which.len(), 1 + ALL_IDS.len() - 1);
        assert_eq!(a.which[0], "fig5");
    }

    #[test]
    fn rejects_unknown_id() {
        let e = parse(s(&["fig9"])).unwrap_err();
        assert!(e.contains("unknown argument: fig9"));
    }

    #[test]
    fn rejects_zero_trials_and_missing_values() {
        assert!(parse(s(&["fig5", "--trials", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse(s(&["fig5", "--trials"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(s(&["fig5", "--trials", "abc"]))
            .unwrap_err()
            .contains("bad --trials"));
        assert!(parse(s(&["fig5", "--out"]))
            .unwrap_err()
            .contains("directory"));
    }

    #[test]
    fn empty_selection_prints_usage() {
        let e = parse(s(&[])).unwrap_err();
        assert!(e.starts_with("usage:"));
        for id in ALL_IDS {
            assert!(e.contains(id), "usage must list {id}");
        }
    }

    #[test]
    fn command_defaults_to_the_runner() {
        let c = parse_command(s(&["fig5", "--trials", "2"])).unwrap();
        let Command::Run(a) = c else {
            panic!("expected Run, got {c:?}");
        };
        assert_eq!(a.which, vec!["fig5"]);
        assert_eq!(a.cfg.trials, 2);
    }

    #[test]
    fn obs_diff_parses_paths_and_defaults() {
        let c = parse_command(s(&["obs-diff", "a.json", "b.json"])).unwrap();
        let Command::ObsDiff(d) = c else {
            panic!("expected ObsDiff, got {c:?}");
        };
        assert_eq!(d.baseline, PathBuf::from("a.json"));
        assert_eq!(d.candidate, PathBuf::from("b.json"));
        let defaults = qnet_obs::DiffOptions::default();
        assert_eq!(d.span_ratio, defaults.span_ratio);
        assert_eq!(d.counter_ratio, defaults.counter_ratio);
        assert_eq!(d.min_span_us, defaults.min_span_us);
        assert!(!d.warn_only);
        assert!(d.options().fail_on_missing);
    }

    #[test]
    fn obs_diff_parses_thresholds() {
        let c = parse_command(s(&[
            "obs-diff",
            "base.json",
            "--span-ratio",
            "3.5",
            "cand.json",
            "--counter-ratio",
            "4",
            "--min-span-us",
            "500",
            "--warn-only",
        ]))
        .unwrap();
        let Command::ObsDiff(d) = c else {
            panic!("expected ObsDiff, got {c:?}");
        };
        assert_eq!(d.span_ratio, 3.5);
        assert_eq!(d.counter_ratio, 4.0);
        assert_eq!(d.min_span_us, 500);
        assert!(d.warn_only);
        assert_eq!(d.options().span_ratio, 3.5);
    }

    #[test]
    fn fuzz_parses_budget_seed_and_out() {
        let c = parse_command(s(&["fuzz", "--budget", "500"])).unwrap();
        let Command::Fuzz(f) = c else {
            panic!("expected Fuzz, got {c:?}");
        };
        assert_eq!(f.budget, 500);
        assert_eq!(f.base_seed, 0);
        assert!(!f.churn);
        assert!(!f.delta);
        assert_eq!(f.out, PathBuf::from("fuzz-counterexample.json"));
        assert_eq!(f.config().budget, 500);
        assert!(!f.config().churn);
        assert!(!f.config().delta);

        let c = parse_command(s(&["fuzz", "--budget", "9", "--churn"])).unwrap();
        let Command::Fuzz(f) = c else {
            panic!("expected Fuzz, got {c:?}");
        };
        assert!(f.churn);
        assert!(f.config().churn);

        let c = parse_command(s(&["fuzz", "--budget", "9", "--delta"])).unwrap();
        let Command::Fuzz(f) = c else {
            panic!("expected Fuzz, got {c:?}");
        };
        assert!(f.delta);
        assert!(!f.churn);
        assert!(f.config().delta);

        let c = parse_command(s(&["fuzz", "--budget", "9", "--serve"])).unwrap();
        let Command::Fuzz(f) = c else {
            panic!("expected Fuzz, got {c:?}");
        };
        assert!(f.serve);
        assert!(!f.delta);
        assert!(f.config().serve);

        let c = parse_command(s(&[
            "fuzz",
            "--seed",
            "7",
            "--budget",
            "20",
            "--out",
            "/tmp/ce.json",
        ]))
        .unwrap();
        let Command::Fuzz(f) = c else {
            panic!("expected Fuzz, got {c:?}");
        };
        assert_eq!(f.base_seed, 7);
        assert_eq!(f.budget, 20);
        assert_eq!(f.out, PathBuf::from("/tmp/ce.json"));
    }

    #[test]
    fn fuzz_rejects_bad_invocations() {
        assert!(parse_command(s(&["fuzz"]))
            .unwrap_err()
            .contains("usage: repro fuzz"));
        assert!(parse_command(s(&["fuzz", "--budget", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["fuzz", "--budget"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_command(s(&["fuzz", "--budget", "5", "--bogus"]))
            .unwrap_err()
            .contains("unknown fuzz argument"));
    }

    #[test]
    fn churn_parses_flags_and_defaults() {
        let c = parse_command(s(&["churn"])).unwrap();
        let Command::Churn(a) = c else {
            panic!("expected Churn, got {c:?}");
        };
        assert_eq!(a.cfg, crate::churn::ChurnConfig::default());
        assert_eq!(a.out, None);
        assert!(!a.obs_report);

        let c = parse_command(s(&[
            "churn",
            "--trials",
            "5",
            "--failures",
            "2",
            "--seed",
            "9",
            "--slots",
            "100",
            "--out",
            "/tmp/churn",
            "--obs-report",
        ]))
        .unwrap();
        let Command::Churn(a) = c else {
            panic!("expected Churn, got {c:?}");
        };
        assert_eq!(a.cfg.trials, 5);
        assert_eq!(a.cfg.failures, 2);
        assert_eq!(a.cfg.base_seed, 9);
        assert_eq!(a.cfg.sim_slots, 100);
        assert_eq!(a.out, Some(PathBuf::from("/tmp/churn")));
        assert!(a.obs_report);
    }

    #[test]
    fn churn_rejects_bad_invocations() {
        assert!(parse_command(s(&["churn", "--trials", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["churn", "--failures"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_command(s(&["churn", "--bogus"]))
            .unwrap_err()
            .contains("unknown churn argument"));
    }

    #[test]
    fn obs_diff_rejects_bad_invocations() {
        assert!(parse_command(s(&["obs-diff", "only-one.json"]))
            .unwrap_err()
            .contains("usage: repro obs-diff"));
        assert!(parse_command(s(&["obs-diff", "a", "b", "c"]))
            .unwrap_err()
            .contains("got 3 path(s)"));
        assert!(
            parse_command(s(&["obs-diff", "a", "b", "--span-ratio", "0.5"]))
                .unwrap_err()
                .contains("greater than 1")
        );
        assert!(parse_command(s(&["obs-diff", "a", "b", "--bogus"]))
            .unwrap_err()
            .contains("unknown obs-diff flag"));
    }

    #[test]
    fn obs_diff_hist_ratio_is_opt_in() {
        let c = parse_command(s(&["obs-diff", "a.json", "b.json"])).unwrap();
        let Command::ObsDiff(d) = c else {
            panic!("expected ObsDiff, got {c:?}");
        };
        assert_eq!(d.hist_ratio, None);
        assert_eq!(d.options().hist_ratio, None);

        let c = parse_command(s(&["obs-diff", "a.json", "b.json", "--hist-ratio", "2.5"])).unwrap();
        let Command::ObsDiff(d) = c else {
            panic!("expected ObsDiff, got {c:?}");
        };
        assert_eq!(d.hist_ratio, Some(2.5));
        assert_eq!(d.options().hist_ratio, Some(2.5));

        assert!(
            parse_command(s(&["obs-diff", "a", "b", "--hist-ratio", "1.0"]))
                .unwrap_err()
                .contains("greater than 1")
        );
        assert!(parse_command(s(&["obs-diff", "a", "b", "--hist-ratio"]))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn profile_parses_scenario_and_defaults() {
        let c = parse_command(s(&["profile", "paper-default"])).unwrap();
        let Command::Profile(p) = c else {
            panic!("expected Profile, got {c:?}");
        };
        assert_eq!(p.scenario, "paper-default");
        assert_eq!(p.seed, 2024);
        assert_eq!(p.out, PathBuf::from("results/profile"));
        assert_eq!(p.top, 15);
        assert_eq!(p.bench_out, None);

        let c = parse_command(s(&[
            "profile",
            "--seed",
            "7",
            "waxman-240",
            "--out",
            "/tmp/prof",
            "--top",
            "5",
            "--bench-out",
            "BENCH_pr6.json",
        ]))
        .unwrap();
        let Command::Profile(p) = c else {
            panic!("expected Profile, got {c:?}");
        };
        assert_eq!(p.scenario, "waxman-240");
        assert_eq!(p.seed, 7);
        assert_eq!(p.out, PathBuf::from("/tmp/prof"));
        assert_eq!(p.top, 5);
        assert_eq!(p.bench_out, Some(PathBuf::from("BENCH_pr6.json")));
    }

    #[test]
    fn stream_parses_flags_and_defaults() {
        let c = parse_command(s(&["stream"])).unwrap();
        let Command::Stream(a) = c else {
            panic!("expected Stream, got {c:?}");
        };
        assert_eq!(a.slots, 2048);
        assert_eq!(a.window, 64);
        assert_eq!(a.seed, 2024);
        assert_eq!(a.arrival, 0.35);
        assert_eq!(a.sample_every, 8);
        assert_eq!(a.churn_every, 0);
        assert_eq!(a.out, PathBuf::from("results/stream"));
        let cfg = a.config();
        assert_eq!(cfg.slots, 2048);
        assert_eq!(cfg.window_slots, 64);
        assert_eq!(cfg.base_arrival, 0.35);
        assert_eq!(cfg.churn_every, 0);

        let c = parse_command(s(&[
            "stream",
            "--slots",
            "1024",
            "--window",
            "32",
            "--seed",
            "7",
            "--arrival",
            "0.5",
            "--sample-every",
            "4",
            "--churn-every",
            "16",
            "--out",
            "/tmp/stream",
        ]))
        .unwrap();
        let Command::Stream(a) = c else {
            panic!("expected Stream, got {c:?}");
        };
        assert_eq!(a.slots, 1024);
        assert_eq!(a.window, 32);
        assert_eq!(a.seed, 7);
        assert_eq!(a.arrival, 0.5);
        assert_eq!(a.sample_every, 4);
        assert_eq!(a.churn_every, 16);
        assert_eq!(a.out, PathBuf::from("/tmp/stream"));
        assert_eq!(a.config().sample_every, 4);
        assert_eq!(a.config().churn_every, 16);
    }

    #[test]
    fn stream_rejects_bad_invocations() {
        assert!(parse_command(s(&["stream", "--slots", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["stream", "--window", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["stream", "--arrival", "1.5"]))
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(parse_command(s(&["stream", "--sample-every", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["stream", "--seed"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_command(s(&["stream", "--churn-every"]))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse_command(s(&["stream", "--bogus"]))
            .unwrap_err()
            .contains("unknown stream argument"));
    }

    #[test]
    fn serve_parses_flags_and_defaults() {
        let c = parse_command(s(&["serve"])).unwrap();
        let Command::Serve(a) = c else {
            panic!("expected Serve, got {c:?}");
        };
        assert_eq!(a.slots, 2048);
        assert_eq!(a.round, 32);
        assert_eq!(a.queue, 16);
        assert_eq!(a.policy, "fcfs");
        assert_eq!(a.seed, 7);
        assert_eq!(a.arrival, 0.35);
        assert_eq!(a.out, PathBuf::from("results/serve"));
        let cfg = a.config().unwrap();
        assert_eq!(cfg.stream.slots, 2048);
        assert_eq!(cfg.round_slots, 32);
        assert_eq!(cfg.queue_capacity, 16);
        assert_eq!(cfg.policy, muerp_serve::PolicyKind::Fcfs);

        let c = parse_command(s(&[
            "serve",
            "--slots",
            "512",
            "--round",
            "16",
            "--queue",
            "8",
            "--policy",
            "weighted",
            "--seed",
            "3",
            "--arrival",
            "0.5",
            "--out",
            "/tmp/serve",
        ]))
        .unwrap();
        let Command::Serve(a) = c else {
            panic!("expected Serve, got {c:?}");
        };
        assert_eq!(a.slots, 512);
        assert_eq!(a.round, 16);
        assert_eq!(a.queue, 8);
        assert_eq!(a.policy, "weighted");
        assert_eq!(a.seed, 3);
        assert_eq!(a.arrival, 0.5);
        assert_eq!(a.out, PathBuf::from("/tmp/serve"));
        assert_eq!(
            a.config().unwrap().policy,
            muerp_serve::PolicyKind::WeightedFair
        );
    }

    #[test]
    fn serve_rejects_bad_invocations() {
        assert!(parse_command(s(&["serve", "--slots", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["serve", "--round", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["serve", "--queue", "0"]))
            .unwrap_err()
            .contains("positive"));
        assert!(parse_command(s(&["serve", "--policy", "lifo"]))
            .unwrap_err()
            .contains("unknown policy"));
        assert!(parse_command(s(&["serve", "--arrival", "1.5"]))
            .unwrap_err()
            .contains("[0, 1]"));
        assert!(parse_command(s(&["serve", "--bogus"]))
            .unwrap_err()
            .contains("unknown serve argument"));
    }

    #[test]
    fn profile_rejects_bad_invocations() {
        assert!(parse_command(s(&["profile"]))
            .unwrap_err()
            .contains("usage: repro profile"));
        assert!(parse_command(s(&["profile", "nonsense"]))
            .unwrap_err()
            .contains("unknown profile argument"));
        assert!(
            parse_command(s(&["profile", "paper-default", "waxman-240"]))
                .unwrap_err()
                .contains("exactly one scenario")
        );
        assert!(
            parse_command(s(&["profile", "paper-default", "--top", "0"]))
                .unwrap_err()
                .contains("positive")
        );
        assert!(parse_command(s(&["profile", "paper-default", "--seed"]))
            .unwrap_err()
            .contains("needs a value"));
    }
}
