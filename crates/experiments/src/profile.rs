//! `repro profile` — one fully-instrumented solve, attributed.
//!
//! Runs a single scenario (one network, one seed, every algorithm of
//! the paper's suite, single-threaded) at `MUERP_OBS=trace` and turns
//! the resulting span tree, flight recorder, counters, and (when the
//! `alloc-profile` feature is compiled in) allocation tallies into a
//! perf-attribution report:
//!
//! * **stdout + `profile-<scenario>.csv`** — only bitwise-deterministic
//!   facts: per-algorithm rates, per-phase span counts, every counter,
//!   cache-efficiency tallies, trace-event counts, allocation counts.
//!   CI runs the command twice and byte-compares these.
//! * **stderr + `profile-<scenario>-times.csv`** — the wall-time
//!   attribution table (self vs. total per phase, top-N by self time,
//!   coverage). Timing jitters between runs, so it stays out of the
//!   deterministic artifacts.
//! * **`profile-<scenario>.json`** — a schema-3 [`qnet_obs::RunReport`]
//!   with the [`qnet_obs::ProfileSection`] attached.
//! * **`profile-<scenario>.trace.json`** — the Chrome/Perfetto trace
//!   (open in `ui.perfetto.dev` or `chrome://tracing`).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use muerp_core::model::NetworkSpec;

use crate::cli::ProfileArgs;
use crate::suite::AlgoKind;

/// The network a profile scenario id denotes; `None` for unknown ids
/// (the CLI validates against [`crate::cli::PROFILE_SCENARIOS`]).
pub fn scenario_spec(id: &str) -> Option<NetworkSpec> {
    match id {
        // §V-A defaults: Waxman, 50 switches + 10 users.
        "paper-default" => Some(NetworkSpec::paper_default()),
        // The bench crate's large topology: 240 switches + 10 users.
        "waxman-240" => {
            let mut spec = NetworkSpec::paper_default();
            spec.topology.nodes = 240 + spec.users;
            Some(spec)
        }
        // The parallel-search bench tier: 2400 switches + 10 users —
        // big enough that the CSR layout and the pooled multi-source
        // batches dominate the profile.
        "waxman-2400" => {
            let mut spec = NetworkSpec::paper_default();
            spec.topology.nodes = 2400 + spec.users;
            Some(spec)
        }
        _ => None,
    }
}

/// RAII guard pinning the default pool width to 1 for the duration of a
/// profiled run; a no-op when `MUERP_THREADS` is set (explicit override
/// wins — the operator has opted out of deterministic alloc facts).
struct PinnedPool {
    engaged: bool,
}

impl PinnedPool {
    fn engage() -> Self {
        let engaged = std::env::var_os(qnet_pool::THREADS_ENV).is_none();
        if engaged {
            qnet_pool::set_default_threads(Some(1));
        }
        PinnedPool { engaged }
    }
}

impl Drop for PinnedPool {
    fn drop(&mut self) {
        if self.engaged {
            qnet_pool::set_default_threads(None);
        }
    }
}

fn algo_span(algo: AlgoKind) -> &'static str {
    match algo {
        AlgoKind::Alg2 => "exp.profile.alg2",
        AlgoKind::Alg3 => "exp.profile.alg3",
        AlgoKind::Alg4 => "exp.profile.alg4",
        AlgoKind::NFusion => "exp.profile.n_fusion",
        AlgoKind::EQCast => "exp.profile.e_q_cast",
    }
}

/// Everything one profiled run produced, ready to render and write.
pub struct ProfileRun {
    /// Scenario id (`paper-default` | `waxman-240` | `waxman-2400`).
    pub scenario: String,
    /// Seed used for both network generation and Algorithm 4.
    pub seed: u64,
    /// `(legend name, rate)` per algorithm, suite order.
    pub rates: Vec<(&'static str, f64)>,
    /// The captured schema-3 report, profile section attached.
    pub report: qnet_obs::RunReport,
    /// Flight-recorder contents at capture time, oldest first.
    pub events: Vec<qnet_obs::Stamped>,
    /// Events evicted from the ring during the run.
    pub trace_dropped: u64,
    /// Spans dropped by the span-store cap during the run.
    pub spans_dropped: u64,
}

/// Runs `scenario` once under full instrumentation.
///
/// Forces [`qnet_obs::ObsLevel::Trace`] and resets the global registry,
/// span store, and flight recorder first, so the report is a pure
/// per-run delta. Single-threaded unless `MUERP_THREADS` is set: the
/// worker pool is pinned to width 1 for the duration so every algorithm
/// runs on the caller's thread and the allocation facts stay
/// byte-deterministic.
///
/// # Errors
///
/// Returns a message for unknown scenario ids.
pub fn run_scenario(scenario: &str, seed: u64) -> Result<ProfileRun, String> {
    let spec = scenario_spec(scenario).ok_or_else(|| format!("unknown scenario: {scenario}"))?;
    // Pin the worker pool to one thread unless the user explicitly set
    // MUERP_THREADS: the allocation tallies below come from a
    // process-global counting allocator, so worker-thread allocations
    // would land in the deterministic CSV in a machine-dependent way.
    // With the pool pinned, every solver runs on this thread and the
    // facts byte-compare across runs and hosts. (Search *results* are
    // thread-count-invariant regardless; only alloc attribution isn't.)
    let _pin = PinnedPool::engage();
    qnet_obs::set_level(qnet_obs::ObsLevel::Trace);
    qnet_obs::global().reset();
    qnet_obs::reset_spans();
    qnet_obs::reset_trace();

    let alloc_scope = qnet_obs::AllocScope::begin();
    let mut rates = Vec::with_capacity(AlgoKind::ALL.len());
    {
        let _root = qnet_obs::enter("exp.profile.run");
        let net = {
            let _build = qnet_obs::enter("exp.profile.build");
            spec.build(seed)
        };
        for algo in AlgoKind::ALL {
            let _solve = qnet_obs::enter(algo_span(algo));
            rates.push((algo.name(), algo.rate_on(&net, seed)));
        }
    }
    let alloc = alloc_scope.end();

    let mut report = qnet_obs::RunReport::capture(&format!("profile-{scenario}")).with_profile();
    if let Some(section) = report.profile.as_mut() {
        section.alloc = alloc;
        section.peak_rss_bytes = qnet_obs::peak_rss_bytes();
    }
    let trace_dropped = report.counter_total("obs.trace.dropped");
    let spans_dropped = report.counter_total("obs.spans.dropped");
    Ok(ProfileRun {
        scenario: scenario.to_string(),
        seed,
        rates,
        report,
        events: qnet_obs::trace_snapshot(),
        trace_dropped,
        spans_dropped,
    })
}

/// One deterministic fact: `(section, name, value)` — the row format of
/// the primary CSV and the stdout table.
type Fact = (&'static str, String, String);

impl ProfileRun {
    /// Cache-efficiency tallies derived from the global counters:
    /// `(hits, misses, refreshes, workspace runs, workspace grown)`.
    fn cache_tallies(&self) -> (u64, u64, u64, u64, u64) {
        let c = |name: &str| self.report.counter_total(name);
        (
            c("core.channel.cache_hits"),
            c("core.channel.cache_misses"),
            c("core.channel.cache_refreshes"),
            c("graph.workspace.runs"),
            c("graph.workspace.grown"),
        )
    }

    /// The run's bitwise-deterministic facts, in a fixed order: rates,
    /// per-phase span counts, cache tallies, trace totals, counters,
    /// and (when counted) allocations. No wall-clock data.
    pub fn deterministic_facts(&self) -> Vec<Fact> {
        let mut facts: Vec<Fact> = Vec::new();
        facts.push(("run", "scenario".into(), self.scenario.clone()));
        facts.push(("run", "seed".into(), self.seed.to_string()));
        for (name, rate) in &self.rates {
            facts.push(("rate", (*name).into(), format!("{rate:.9}")));
        }
        let profile = self
            .report
            .profile
            .as_ref()
            .expect("attached by run_scenario");
        for row in &profile.rows {
            facts.push(("span_count", row.name.clone(), row.count.to_string()));
        }
        let (hits, misses, refreshes, ws_runs, ws_grown) = self.cache_tallies();
        let lookups = hits + misses;
        facts.push(("cache", "channel_hits".into(), hits.to_string()));
        facts.push(("cache", "channel_misses".into(), misses.to_string()));
        facts.push(("cache", "channel_refreshes".into(), refreshes.to_string()));
        facts.push((
            "cache",
            "channel_hit_rate".into(),
            if lookups == 0 {
                "1.000".into()
            } else {
                format!("{:.3}", hits as f64 / lookups as f64)
            },
        ));
        facts.push(("cache", "workspace_runs".into(), ws_runs.to_string()));
        facts.push(("cache", "workspace_grown".into(), ws_grown.to_string()));
        facts.push((
            "cache",
            "workspace_reuse_rate".into(),
            if ws_runs == 0 {
                "1.000".into()
            } else {
                format!("{:.3}", 1.0 - ws_grown as f64 / ws_runs as f64)
            },
        ));
        facts.push(("trace", "events".into(), self.events.len().to_string()));
        facts.push(("trace", "dropped".into(), self.trace_dropped.to_string()));
        facts.push((
            "spans",
            "recorded".into(),
            self.report.spans.len().to_string(),
        ));
        facts.push(("spans", "dropped".into(), self.spans_dropped.to_string()));
        for c in &self.report.counters {
            facts.push(("counter", c.key.clone(), c.value.to_string()));
        }
        if let Some(a) = profile.alloc {
            facts.push(("alloc", "allocs".into(), a.allocs.to_string()));
            facts.push(("alloc", "bytes".into(), a.bytes.to_string()));
            facts.push(("alloc", "peak_bytes".into(), a.peak_bytes.to_string()));
        }
        facts
    }

    /// The deterministic facts as the stdout table.
    pub fn render_text(&self) -> String {
        let facts = self.deterministic_facts();
        let width = facts
            .iter()
            .map(|(s, n, _)| s.len() + n.len() + 1)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile {} — seed {}, level {} (deterministic facts; timings on stderr)",
            self.scenario, self.seed, self.report.level
        );
        if !qnet_obs::alloc_profiling_compiled() {
            let _ = writeln!(
                out,
                "note: allocation counting not compiled in \
                 (rebuild with --features muerp-experiments/alloc-profile)"
            );
        }
        for (section, name, value) in &facts {
            let label = format!("{section}.{name}");
            let _ = writeln!(out, "  {label:<width$}  {value}");
        }
        out
    }

    /// The deterministic facts as CSV (`section,name,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("section,name,value\n");
        for (section, name, value) in self.deterministic_facts() {
            let _ = writeln!(out, "{section},{name},{value}");
        }
        out
    }

    /// The wall-time attribution table (top `top` phases by self time)
    /// — stderr material, not byte-compared.
    pub fn render_times(&self, top: usize) -> String {
        let profile = self
            .report
            .profile
            .as_ref()
            .expect("attached by run_scenario");
        let mut rows: Vec<_> = profile.rows.iter().collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "wall-time attribution — root {} µs, attributed {} µs (coverage {:.1}%)",
            profile.root_total_us,
            profile.attributed_us,
            profile.coverage() * 100.0
        );
        let _ = writeln!(
            out,
            "  {:<34} {:>7} {:>12} {:>12} {:>7}",
            "phase", "count", "total µs", "self µs", "self %"
        );
        for row in rows.iter().take(top) {
            let pct = if profile.root_total_us == 0 {
                0.0
            } else {
                row.self_us as f64 / profile.root_total_us as f64 * 100.0
            };
            let _ = writeln!(
                out,
                "  {:<34} {:>7} {:>12} {:>12} {:>6.1}%",
                row.name, row.count, row.total_us, row.self_us, pct
            );
        }
        if rows.len() > top {
            let _ = writeln!(
                out,
                "  … {} more phase(s) in the times CSV",
                rows.len() - top
            );
        }
        if let Some(a) = profile.alloc {
            let _ = writeln!(
                out,
                "allocations: {} ({} bytes, peak live {} bytes)",
                a.allocs, a.bytes, a.peak_bytes
            );
        }
        if let Some(rss) = profile.peak_rss_bytes {
            let _ = writeln!(out, "peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        out
    }

    /// Every phase's timing as CSV (`name,count,total_us,self_us`),
    /// sorted by self time descending.
    pub fn times_csv(&self) -> String {
        let profile = self
            .report
            .profile
            .as_ref()
            .expect("attached by run_scenario");
        let mut rows: Vec<_> = profile.rows.iter().collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        let mut out = String::from("name,count,total_us,self_us\n");
        for row in rows {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                row.name, row.count, row.total_us, row.self_us
            );
        }
        out
    }

    /// This run's entry for the tracked attribution-numbers JSON.
    fn bench_entry(&self) -> serde_json::Value {
        use serde_json::Value;
        let profile = self
            .report
            .profile
            .as_ref()
            .expect("attached by run_scenario");
        let (hits, misses, refreshes, ws_runs, ws_grown) = self.cache_tallies();
        let mut phases = serde_json::Map::new();
        for row in &profile.rows {
            let mut p = serde_json::Map::new();
            p.insert("count".into(), Value::from(row.count));
            p.insert("total_us".into(), Value::from(row.total_us));
            p.insert("self_us".into(), Value::from(row.self_us));
            phases.insert(row.name.clone(), Value::Object(p));
        }
        let mut rates = serde_json::Map::new();
        for (name, rate) in &self.rates {
            rates.insert((*name).into(), Value::from(*rate));
        }
        let mut cache = serde_json::Map::new();
        cache.insert("channel_hits".into(), Value::from(hits));
        cache.insert("channel_misses".into(), Value::from(misses));
        cache.insert("channel_refreshes".into(), Value::from(refreshes));
        cache.insert("workspace_runs".into(), Value::from(ws_runs));
        cache.insert("workspace_grown".into(), Value::from(ws_grown));
        let mut m = serde_json::Map::new();
        m.insert("seed".into(), Value::from(self.seed));
        m.insert("rates".into(), Value::Object(rates));
        m.insert("root_total_us".into(), Value::from(profile.root_total_us));
        m.insert("attributed_us".into(), Value::from(profile.attributed_us));
        m.insert("coverage".into(), Value::from(profile.coverage()));
        m.insert("spans".into(), Value::from(self.report.spans.len() as u64));
        m.insert("trace_events".into(), Value::from(self.events.len() as u64));
        m.insert("trace_dropped".into(), Value::from(self.trace_dropped));
        m.insert("phases".into(), Value::Object(phases));
        m.insert("cache".into(), Value::Object(cache));
        m.insert(
            "alloc".into(),
            profile.alloc.map_or(Value::Null, |a| {
                let mut alloc = serde_json::Map::new();
                alloc.insert("allocs".into(), Value::from(a.allocs));
                alloc.insert("bytes".into(), Value::from(a.bytes));
                alloc.insert("peak_bytes".into(), Value::from(a.peak_bytes));
                Value::Object(alloc)
            }),
        );
        Value::Object(m)
    }

    /// Merges this run into the tracked bench JSON at `path` (shape of
    /// the repo's `BENCH_pr*.json` files): existing entries for *other*
    /// scenarios survive, this scenario's entry is replaced.
    ///
    /// # Errors
    ///
    /// I/O errors reading or writing `path`.
    pub fn write_bench(&self, path: &Path) -> std::io::Result<()> {
        let mut root = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .and_then(|v| match v {
                serde_json::Value::Object(m) => Some(m),
                _ => None,
            })
            .unwrap_or_default();
        root.insert(
            "bench".into(),
            serde_json::Value::from("profile_attribution"),
        );
        root.insert("pr".into(), serde_json::Value::from(6u64));
        root.insert(
            "unit".into(),
            serde_json::Value::from("µs of self time per phase"),
        );
        let scenarios = root
            .entry("scenarios".to_string())
            .or_insert_with(|| serde_json::Value::Object(Default::default()));
        if let serde_json::Value::Object(m) = scenarios {
            m.insert(self.scenario.clone(), self.bench_entry());
        }
        let text = serde_json::to_string_pretty(&serde_json::Value::Object(root))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, text + "\n")
    }
}

/// Runs the scenario and writes every artifact under `args.out`:
/// primary CSV, times CSV, schema-3 report, Chrome trace, and (with
/// `--bench-out`) the tracked attribution numbers. Returns the run plus
/// the written paths for the caller to print.
///
/// # Errors
///
/// Returns a message on unknown scenarios or I/O failure.
pub fn run_profile(args: &ProfileArgs) -> Result<(ProfileRun, Vec<PathBuf>), String> {
    let run = run_scenario(&args.scenario, args.seed)?;
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    let mut written = Vec::new();

    let csv = args.out.join(format!("profile-{}.csv", run.scenario));
    std::fs::write(&csv, run.to_csv())
        .map_err(|e| format!("cannot write {}: {e}", csv.display()))?;
    written.push(csv);

    let times = args.out.join(format!("profile-{}-times.csv", run.scenario));
    std::fs::write(&times, run.times_csv())
        .map_err(|e| format!("cannot write {}: {e}", times.display()))?;
    written.push(times);

    let report_path = qnet_obs::write_report(&args.out, &run.report)
        .map_err(|e| format!("cannot write run report: {e}"))?;
    written.push(report_path);

    let trace_path = qnet_obs::write_chrome_trace(
        &args.out,
        &format!("profile-{}", run.scenario),
        &run.report,
        &run.events,
    )
    .map_err(|e| format!("cannot write chrome trace: {e}"))?;
    written.push(trace_path);

    if let Some(bench) = &args.bench_out {
        run.write_bench(bench)
            .map_err(|e| format!("cannot write {}: {e}", bench.display()))?;
        written.push(bench.clone());
    }
    Ok((run, written))
}

#[cfg(test)]
mod tests {
    // Tests that actually *run* a scenario live in
    // `tests/profile_determinism.rs`: `run_scenario` mutates the
    // process-global obs state, so they need their own process, away
    // from the rest of this crate's parallel unit tests. Only the pure
    // helpers are covered here.
    use super::*;

    #[test]
    fn unknown_scenarios_are_rejected() {
        assert!(scenario_spec("nonsense").is_none());
        assert!(scenario_spec("").is_none());
    }

    #[test]
    fn known_scenarios_resolve() {
        for id in crate::cli::PROFILE_SCENARIOS {
            assert!(scenario_spec(id).is_some(), "{id} must resolve");
        }
        assert_eq!(
            scenario_spec("paper-default").unwrap(),
            NetworkSpec::paper_default()
        );
    }

    #[test]
    fn waxman_240_spec_holds_240_switches() {
        let spec = scenario_spec("waxman-240").unwrap();
        assert_eq!(spec.topology.nodes, 240 + spec.users);
        assert_eq!(spec.users, NetworkSpec::paper_default().users);
    }

    #[test]
    fn waxman_2400_spec_holds_2400_switches() {
        let spec = scenario_spec("waxman-2400").unwrap();
        assert_eq!(spec.topology.nodes, 2400 + spec.users);
        assert_eq!(spec.users, NetworkSpec::paper_default().users);
    }

    #[test]
    fn profile_pin_respects_explicit_thread_override() {
        // With MUERP_THREADS unset, engaging the pin forces width 1 and
        // dropping it restores the host default.
        if std::env::var_os(qnet_pool::THREADS_ENV).is_some() {
            return; // operator override active: the guard must no-op
        }
        {
            let _pin = PinnedPool::engage();
            assert_eq!(qnet_pool::threads_from_env(), 1);
        }
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(qnet_pool::threads_from_env(), host);
    }

    #[test]
    fn algo_spans_are_distinct_and_namespaced() {
        let names: std::collections::BTreeSet<_> =
            AlgoKind::ALL.iter().map(|&a| algo_span(a)).collect();
        assert_eq!(names.len(), AlgoKind::ALL.len());
        for name in names {
            assert!(name.starts_with("exp.profile."), "{name}");
        }
    }
}
