//! Quality ablations for the design choices DESIGN.md §5 calls out.
//!
//! Each function sweeps one knob of a proposed algorithm and reports the
//! mean entanglement rate it achieves (same 20-network protocol as the
//! figures), quantifying how much the paper's specific greedy choices
//! matter.

use muerp_core::algorithms::{
    ConflictFree, LocalSearchOptions, PrimBased, Refined, RetentionPolicy, SeedChoice,
};
use muerp_core::model::NetworkSpec;
use muerp_core::solver::RoutingAlgorithm;
use parking_lot::Mutex;

use crate::runner::TrialConfig;
use crate::table::FigureTable;

/// Per-trial seed-choice policy used by the [`seed_choice`] ablation.
type SeedPolicy = Box<dyn Fn(u64) -> SeedChoice + Sync>;

/// Mean rate of `solve` over the trial networks (0 on failure), plus the
/// fraction of feasible trials.
fn sweep<A: RoutingAlgorithm + Sync>(
    spec: NetworkSpec,
    algo_for_trial: impl Fn(u64) -> A + Sync,
    cfg: TrialConfig,
) -> (f64, f64) {
    let acc = Mutex::new((0.0f64, 0u64));
    let next = std::sync::atomic::AtomicU64::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cfg.trials.max(1) as usize);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if t >= cfg.trials {
                    break;
                }
                let seed = cfg.base_seed + t;
                let net = spec.build(seed);
                let outcome = algo_for_trial(seed).solve(&net);
                let mut lock = acc.lock();
                if let Ok(sol) = outcome {
                    lock.0 += sol.rate.value();
                    lock.1 += 1;
                }
            });
        }
    })
    .expect("worker panicked");
    let (total, feasible) = acc.into_inner();
    (
        total / cfg.trials as f64,
        feasible as f64 / cfg.trials as f64,
    )
}

/// Ablation: Algorithm 4's seed-user policy.
///
/// The paper picks the seed uniformly at random; `BestOfAll` retries from
/// every user (×|U| cost) and upper-bounds what seed choice can buy.
pub fn seed_choice(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.ablations.seed_choice");
    let spec = NetworkSpec::paper_default();
    let mut rows = Vec::new();
    let variants: [(&str, SeedPolicy); 3] = [
        ("first-user", Box::new(|_| SeedChoice::FirstUser)),
        ("random (paper)", Box::new(SeedChoice::Random)),
        ("best-of-all", Box::new(|_| SeedChoice::BestOfAll)),
    ];
    for (label, make) in variants {
        let (rate, feasible) = sweep(spec, |s| PrimBased { seed: make(s) }, cfg);
        rows.push((label.to_string(), vec![rate, feasible]));
    }
    FigureTable {
        id: "ablation_seed",
        title: "Ablation: Algorithm 4 seed-user policy".into(),
        x_label: "policy",
        algos: vec!["mean rate", "feasible frac"],
        rows,
    }
}

/// Ablation: Algorithm 3's phase-1 retention policy under tight capacity
/// (Q = 2, the stressed cell of Fig. 8(a)).
pub fn retention_policy(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.ablations.retention_policy");
    let mut rows = Vec::new();
    for qubits in [2u32, 4] {
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = qubits;
        for (label, retention) in [
            ("max-rate-first (paper)", RetentionPolicy::MaxRateFirst),
            (
                "fewest-switches-first",
                RetentionPolicy::FewestSwitchesFirst,
            ),
        ] {
            let (rate, feasible) = sweep(spec, |_| ConflictFree { retention }, cfg);
            rows.push((format!("Q={qubits} {label}"), vec![rate, feasible]));
        }
    }
    FigureTable {
        id: "ablation_retention",
        title: "Ablation: Algorithm 3 retention policy".into(),
        x_label: "variant",
        algos: vec!["mean rate", "feasible frac"],
        rows,
    }
}

/// Ablation: N-FUSION's GHZ-measurement success model — how much of the
/// baseline's deficit is the fusion penalty vs. the star shape.
pub fn fusion_model(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.ablations.fusion_model");
    use muerp_core::algorithms::baselines::{FusionSuccess, NFusion};
    let spec = NetworkSpec::paper_default();
    let mut rows = Vec::new();
    for (label, fusion) in [
        ("q^(n-1) (paper)", FusionSuccess::PowerLaw),
        ("fixed q (optimistic)", FusionSuccess::Fixed(0.9)),
        ("perfect fusion", FusionSuccess::Fixed(1.0)),
    ] {
        let (rate, feasible) = sweep(spec, |_| NFusion { fusion }, cfg);
        rows.push((label.to_string(), vec![rate, feasible]));
    }
    FigureTable {
        id: "ablation_fusion",
        title: "Ablation: N-FUSION GHZ success model".into(),
        x_label: "model",
        algos: vec!["mean rate", "feasible frac"],
        rows,
    }
}

/// Ablation: local-search refinement on top of the greedy heuristics,
/// under tight capacity (where greedy traps exist) and the default.
pub fn local_search(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.ablations.local_search");
    use qnet_topology::TopologyKind;
    let mut rows = Vec::new();
    // Waxman at two capacity levels, plus power-law (whose hubs
    // concentrate capacity conflicts and give the refinement something
    // to fix).
    let cells: [(TopologyKind, u32); 3] = [
        (TopologyKind::Waxman, 2),
        (TopologyKind::Waxman, 4),
        (TopologyKind::Volchenkov, 2),
    ];
    for (kind, qubits) in cells {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.kind = kind;
        spec.qubits_per_switch = qubits;
        let (plain, _) = sweep(spec, |_| ConflictFree::default(), cfg);
        let (refined, _) = sweep(
            spec,
            |_| Refined {
                inner: ConflictFree::default(),
                options: LocalSearchOptions::default(),
            },
            cfg,
        );
        rows.push((
            format!("{} Q={qubits} Alg-3", kind.name()),
            vec![plain, 0.0],
        ));
        rows.push((
            format!("{} Q={qubits} Alg-3+LS", kind.name()),
            vec![refined, (refined / plain.max(1e-300) - 1.0) * 100.0],
        ));
    }
    FigureTable {
        id: "ablation_localsearch",
        title: "Ablation: local-search refinement of Algorithm 3".into(),
        x_label: "variant",
        algos: vec!["mean rate", "gain (%)"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrialConfig {
        TrialConfig {
            trials: 4,
            base_seed: 50,
        }
    }

    #[test]
    fn best_of_all_dominates_fixed_seeds() {
        let t = seed_choice(tiny());
        let rate = |label: &str| {
            t.rows
                .iter()
                .find(|(l, _)| l.starts_with(label))
                .map(|(_, v)| v[0])
                .unwrap()
        };
        assert!(rate("best-of-all") >= rate("first-user") - 1e-12);
        assert!(rate("best-of-all") >= rate("random") - 1e-12);
    }

    #[test]
    fn retention_table_has_both_capacity_levels() {
        let t = retention_policy(tiny());
        assert_eq!(t.rows.len(), 4);
        assert!(t.rows.iter().all(|(_, v)| (0.0..=1.0).contains(&v[1])));
    }

    #[test]
    fn local_search_never_hurts() {
        let t = local_search(TrialConfig {
            trials: 2,
            base_seed: 60,
        });
        assert_eq!(t.rows.len(), 6);
        for pair in t.rows.chunks(2) {
            let plain = pair[0].1[0];
            let refined = pair[1].1[0];
            assert!(
                refined >= plain * (1.0 - 1e-12),
                "refinement decreased rate: {refined} < {plain}"
            );
        }
    }

    #[test]
    fn weaker_fusion_penalty_raises_the_baseline() {
        let t = fusion_model(tiny());
        let power_law = t.rows[0].1[0];
        let perfect = t.rows[2].1[0];
        assert!(
            perfect >= power_law,
            "removing the fusion penalty cannot hurt: {perfect} vs {power_law}"
        );
    }
}
