//! The five-algorithm suite every figure sweeps.

use muerp_core::error::RoutingError;
use muerp_core::prelude::*;

/// `true` when every trial's solution should additionally pass the
/// independent conformance audit ([`muerp_core::audit`]): debug builds
/// by default, overridable either way with `MUERP_AUDIT=1` / `0`.
fn audit_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("MUERP_AUDIT") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "off" | "false"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Runs the independent audit when enabled; an invalid solution is a
/// bug, so this panics rather than skewing results.
fn audit_gate(net: &QuantumNetwork, solution: &Solution, name: &str) {
    if audit_enabled() {
        if let Err(violation) = audit_solution(net, solution) {
            panic!("{name} failed the conformance audit: {violation}");
        }
    }
}

/// The algorithms compared in every panel of §V, in the paper's legend
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlgoKind {
    /// Algorithm 2 — run on a capacity-granted copy (`Q = 2·|U|`),
    /// matching the paper's protocol; serves as the (near-)unconstrained
    /// reference.
    Alg2,
    /// Algorithm 3 — conflict-free heuristic on the real capacities.
    Alg3,
    /// Algorithm 4 — Prim-based heuristic; the seed user is randomized
    /// per trial as in the paper.
    Alg4,
    /// N-FUSION baseline.
    NFusion,
    /// E-Q-CAST baseline.
    EQCast,
}

impl AlgoKind {
    /// The paper's standard suite, in legend order.
    pub const ALL: [AlgoKind; 5] = [
        AlgoKind::Alg2,
        AlgoKind::Alg3,
        AlgoKind::Alg4,
        AlgoKind::NFusion,
        AlgoKind::EQCast,
    ];

    /// Legend label.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Alg2 => "Alg-2",
            AlgoKind::Alg3 => "Alg-3",
            AlgoKind::Alg4 => "Alg-4",
            AlgoKind::NFusion => "N-Fusion",
            AlgoKind::EQCast => "E-Q-CAST",
        }
    }

    /// Runs the algorithm on `net` for the given trial, returning the
    /// entanglement rate (0 when infeasible, per §V-A).
    ///
    /// Solutions are validated before their rate is accepted; an invalid
    /// solution is a bug, so this panics rather than skewing results.
    ///
    /// # Panics
    ///
    /// Panics if an algorithm emits a structurally invalid solution.
    pub fn rate_on(self, net: &QuantumNetwork, trial_seed: u64) -> f64 {
        let granted;
        let (target, outcome): (&QuantumNetwork, Result<Solution, RoutingError>) = match self {
            AlgoKind::Alg2 => {
                granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);
                (&granted, OptimalSufficient.solve(&granted))
            }
            AlgoKind::Alg3 => (net, ConflictFree::default().solve(net)),
            AlgoKind::Alg4 => (net, PrimBased::with_seed(trial_seed).solve(net)),
            AlgoKind::NFusion => (net, NFusion::default().solve(net)),
            AlgoKind::EQCast => (net, EQCast.solve(net)),
        };
        match outcome {
            Ok(sol) => {
                validate_solution(target, &sol)
                    .unwrap_or_else(|e| panic!("{} invalid solution: {e}", self.name()));
                audit_gate(target, &sol, self.name());
                sol.rate.value()
            }
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_order_matches_legend() {
        let names: Vec<_> = AlgoKind::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["Alg-2", "Alg-3", "Alg-4", "N-Fusion", "E-Q-CAST"]
        );
    }

    #[test]
    fn all_algorithms_run_on_the_default_network() {
        let net = NetworkSpec::paper_default().build(0);
        for algo in AlgoKind::ALL {
            let rate = algo.rate_on(&net, 0);
            assert!((0.0..=1.0).contains(&rate), "{}: {rate}", algo.name());
        }
    }

    #[test]
    fn alg2_rate_dominates_heuristics() {
        // On the granted network Alg-2 upper-bounds the tree heuristics.
        for seed in 0..5 {
            let net = NetworkSpec::paper_default().build(seed);
            let a2 = AlgoKind::Alg2.rate_on(&net, seed);
            for algo in [AlgoKind::Alg3, AlgoKind::Alg4] {
                assert!(
                    algo.rate_on(&net, seed) <= a2 * (1.0 + 1e-9),
                    "seed {seed}: {} beat Alg-2",
                    algo.name()
                );
            }
        }
    }
}
