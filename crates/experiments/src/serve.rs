//! `repro serve` — the batched admission report pipeline.
//!
//! Drives [`muerp_serve::serve`] (batched admission rounds over the
//! seeded open-loop request stream) on a paper-default network and
//! turns the per-round telemetry into the full artifact set:
//!
//! * `serve-rounds.csv` — one row per admission round: arrivals,
//!   admissions, blocks, sheds, departures, queue depth, cache hit
//!   rate, active sessions, free qubits;
//! * `serve-summary.csv` — the run-level totals, per-class tallies,
//!   final deficit balances, and search percentiles;
//! * `serve.metrics.jsonl` — the raw round series, one JSON object per
//!   round ([`qnet_obs::write_metrics_jsonl`]);
//! * `serve.json` — a schema-4 [`qnet_obs::RunReport`] with the
//!   [`TimeSeriesSection`](qnet_obs::TimeSeriesSection) attached;
//! * `serve.prom` — Prometheus-style text exposition of the final
//!   counters and histogram summaries.
//!
//! Everything written is deterministic for a fixed seed: the round
//! timeline, the bounded queue, the policy orders, and the warm-batch
//! merge are all wall-clock- and thread-count-independent (the
//! differential battery in `muerp-serve` pins the thread-invariance
//! bitwise), so CI byte-compares double runs, and the decision-level
//! artifacts additionally at `MUERP_THREADS=1` vs `4` — only the pool
//! scheduling counters inside `serve.json`/`serve.prom` (batch and
//! task counts, per-thread workspace growth) legitimately vary with
//! width. Wall-clock throughput exists only on stderr, via
//! [`ServeRun::render_throughput`].

use std::path::{Path, PathBuf};
use std::time::Duration;

use muerp_core::extensions::SloClass;
use muerp_core::model::NetworkSpec;
use muerp_serve::{serve, ServeConfig, ServeOutcome};

use crate::cli::ServeArgs;
use crate::table::FigureTable;

/// Everything one serve run produces in memory.
#[derive(Clone, Debug)]
pub struct ServeRun {
    /// The admission configuration that ran.
    pub cfg: ServeConfig,
    /// Seed of the network build and the request stream.
    pub seed: u64,
    /// Stats, decisions, rounds, and the round series.
    pub outcome: ServeOutcome,
    /// The rounds and summary tables (deterministic stdout/CSV).
    pub tables: Vec<FigureTable>,
    /// The captured schema-4 report, time-series section attached.
    pub report: qnet_obs::RunReport,
    /// Wall-clock duration of the run (stderr only).
    pub wall: Duration,
}

impl ServeRun {
    /// The deterministic stdout block: both tables as aligned text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            out.push_str(&table.render_text());
            out.push('\n');
        }
        out
    }

    /// Wall-clock throughput line (jitters run to run — stderr only).
    pub fn render_throughput(&self) -> String {
        let secs = self.wall.as_secs_f64().max(1e-9);
        format!(
            "admission service: {} round(s) in {:.1?} — {:.0} rounds/sec, {:.0} decisions/sec\n",
            self.outcome.rounds.len(),
            self.wall,
            self.outcome.rounds.len() as f64 / secs,
            self.outcome.decisions.len() as f64 / secs,
        )
    }
}

/// Builds the per-round and summary tables for `outcome`.
pub fn serve_tables(cfg: &ServeConfig, seed: u64, outcome: &ServeOutcome) -> Vec<FigureTable> {
    let stats = &outcome.stats;
    let round_rows: Vec<(String, Vec<f64>)> = outcome
        .series
        .windows
        .iter()
        .map(|w| {
            let rate = |key: &str| w.rates.get(key).copied().unwrap_or(0) as f64;
            let gauge = |key: &str| w.gauges.get(key).copied().unwrap_or(0.0);
            (
                w.index.to_string(),
                vec![
                    rate("arrivals"),
                    rate("admitted"),
                    rate("blocked_busy") + rate("blocked_capacity"),
                    rate("shed"),
                    rate("departures"),
                    gauge("queue_depth"),
                    gauge("cache_hit_rate"),
                    gauge("active_sessions"),
                    gauge("free_qubits"),
                ],
            )
        })
        .collect();

    let merged = outcome.series.merged_latency("round_searches");
    let (p50, _, p99) = merged.quantiles();
    let mut summary_rows: Vec<(String, Vec<f64>)> = vec![
        ("arrived".into(), vec![stats.arrived as f64]),
        ("admitted".into(), vec![stats.admitted as f64]),
        ("blocked-busy".into(), vec![stats.blocked_busy as f64]),
        (
            "blocked-capacity".into(),
            vec![stats.blocked_capacity as f64],
        ),
        ("shed".into(), vec![stats.shed as f64]),
        ("departures".into(), vec![stats.departures as f64]),
        ("loss-ratio".into(), vec![stats.loss_ratio()]),
        ("mean-session-rate".into(), vec![stats.mean_session_rate]),
        ("peak-queue".into(), vec![stats.peak_queue as f64]),
        (
            "peak-active-sessions".into(),
            vec![stats.peak_active_sessions as f64],
        ),
        ("total-searches".into(), vec![stats.total_searches as f64]),
        ("p50-round-searches".into(), vec![p50]),
        ("p99-round-searches".into(), vec![p99]),
        ("cache-hit-rate".into(), vec![stats.cache.hit_rate()]),
        ("cache-repairs".into(), vec![stats.cache.repairs as f64]),
    ];
    for class in SloClass::ALL {
        let tally = stats.per_class[class.index()];
        summary_rows.push((
            format!("{}-arrived", class.name()),
            vec![tally.arrived as f64],
        ));
        summary_rows.push((
            format!("{}-admitted", class.name()),
            vec![tally.admitted as f64],
        ));
        summary_rows.push((
            format!("{}-deficit", class.name()),
            vec![outcome.deficits[class.index()] as f64],
        ));
    }

    vec![
        FigureTable {
            id: "serve-rounds",
            title: format!(
                "Batched admission over {} slots ({}-slot rounds, {} policy, seed {seed})",
                cfg.stream.slots,
                cfg.round_slots,
                cfg.policy.name()
            ),
            x_label: "round",
            algos: vec![
                "arrivals",
                "admitted",
                "blocked",
                "shed",
                "departures",
                "queue-depth",
                "hit-rate",
                "active",
                "free-qubits",
            ],
            rows: round_rows,
        },
        FigureTable {
            id: "serve-summary",
            title: "Admission service summary".into(),
            x_label: "metric",
            algos: vec!["value"],
            rows: summary_rows,
        },
    ]
}

/// Runs the admission service in memory: resets the process-global
/// observability state, serves, and captures the schema-4 report with
/// the round series attached.
///
/// Unless `MUERP_OBS` pins a level, runs at `counters` — the report
/// then carries no spans (and thus no wall-clock), keeping every
/// artifact byte-deterministic.
pub fn run_workload(cfg: ServeConfig, seed: u64) -> ServeRun {
    if std::env::var_os("MUERP_OBS").is_none() {
        qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
    }
    qnet_obs::global().reset();
    qnet_obs::reset_spans();
    qnet_obs::reset_trace();

    let net = NetworkSpec::paper_default().build(seed);
    let started = std::time::Instant::now();
    let outcome = serve(&net, &cfg, seed);
    let wall = started.elapsed();
    let report = qnet_obs::RunReport::capture("serve").with_timeseries(outcome.series.clone());
    let tables = serve_tables(&cfg, seed, &outcome);
    ServeRun {
        cfg,
        seed,
        outcome,
        tables,
        report,
        wall,
    }
}

/// Runs `repro serve` end to end and writes every artifact into
/// `args.out`. Returns the run and the written paths.
///
/// # Errors
///
/// Returns a message on an unknown policy or when the output directory
/// or any artifact cannot be written.
pub fn run_serve(args: &ServeArgs) -> Result<(ServeRun, Vec<PathBuf>), String> {
    let run = run_workload(args.config()?, args.seed);
    let written = write_artifacts(&args.out, &run)?;
    Ok((run, written))
}

/// Writes the CSVs, metrics stream, run report, and Prometheus
/// exposition into `dir`.
fn write_artifacts(dir: &Path, run: &ServeRun) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for table in &run.tables {
        let path = dir.join(format!("{}.csv", table.id));
        std::fs::write(&path, table.to_csv())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path);
    }
    written.push(
        qnet_obs::write_metrics_jsonl(dir, "serve", &run.outcome.series)
            .map_err(|e| format!("cannot write metrics stream: {e}"))?,
    );
    written.push(
        qnet_obs::write_report(dir, &run.report)
            .map_err(|e| format!("cannot write run report: {e}"))?,
    );
    written.push(
        qnet_obs::write_prometheus(dir, "serve", &run.report)
            .map_err(|e| format!("cannot write prometheus exposition: {e}"))?,
    );
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::extensions::StreamConfig;
    use muerp_serve::PolicyKind;

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            stream: StreamConfig {
                slots: 256,
                window_slots: 32,
                ..StreamConfig::default()
            },
            round_slots: 16,
            queue_capacity: 4,
            policy: PolicyKind::Fcfs,
        }
    }

    #[test]
    fn tables_have_the_documented_shape() {
        let net = NetworkSpec::paper_default().build(3);
        let outcome = serve(&net, &small_cfg(), 3);
        let tables = serve_tables(&small_cfg(), 3, &outcome);
        assert_eq!(tables.len(), 2);
        let rounds = &tables[0];
        assert_eq!(rounds.id, "serve-rounds");
        assert_eq!(rounds.rows.len(), 256 / 16);
        assert_eq!(rounds.algos.len(), 9);
        let summary = &tables[1];
        assert_eq!(summary.id, "serve-summary");
        assert_eq!(summary.algos, vec!["value"]);
        assert_eq!(
            summary.cell("arrived", "value"),
            Some(outcome.stats.arrived as f64)
        );
        assert_eq!(
            summary.cell("shed", "value"),
            Some(outcome.stats.shed as f64)
        );
        // Per-class rows exist for every SLO tier.
        for class in SloClass::ALL {
            assert!(summary
                .cell(&format!("{}-admitted", class.name()), "value")
                .is_some());
        }
    }

    #[test]
    fn round_rows_sum_to_the_summary_totals() {
        let net = NetworkSpec::paper_default().build(4);
        let outcome = serve(&net, &small_cfg(), 4);
        let tables = serve_tables(&small_cfg(), 4, &outcome);
        let col = |name: &str| -> f64 {
            let i = tables[0].algos.iter().position(|a| *a == name).unwrap();
            tables[0].rows.iter().map(|(_, row)| row[i]).sum()
        };
        assert_eq!(col("arrivals"), outcome.stats.arrived as f64);
        assert_eq!(col("admitted"), outcome.stats.admitted as f64);
        assert_eq!(col("shed"), outcome.stats.shed as f64);
        assert_eq!(
            col("blocked"),
            (outcome.stats.blocked_busy + outcome.stats.blocked_capacity) as f64
        );
    }
}
