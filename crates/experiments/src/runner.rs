//! Seeded, parallel multi-trial execution.
//!
//! Every figure cell is an average over `trials` random networks
//! (paper §V-A: 20). Trials are deterministic — trial `t` uses seed
//! `base_seed + t` for both network generation and Algorithm 4's random
//! seed user — and run in parallel across threads with crossbeam's
//! scoped threads.

use parking_lot::Mutex;

use muerp_core::model::QuantumNetwork;

use crate::suite::AlgoKind;

/// Trial configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialConfig {
    /// Number of random networks averaged per cell (paper: 20).
    pub trials: u64,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            trials: 20,
            base_seed: 0,
        }
    }
}

/// Runs every algorithm over `trials` networks produced by `build` and
/// returns the mean entanglement rate per algorithm, in `algos` order.
///
/// `build(seed)` must be a pure function of the seed.
pub fn mean_rates<F>(build: F, algos: &[AlgoKind], cfg: TrialConfig) -> Vec<f64>
where
    F: Fn(u64) -> QuantumNetwork + Sync,
{
    let _span = qnet_obs::span!("exp.runner.mean_rates");
    // Workers buffer their trials locally and take the lock once at
    // exit; the final sum runs in trial order on the caller's thread so
    // the result is bitwise independent of scheduling.
    let rows = Mutex::new(vec![Vec::new(); cfg.trials as usize]);
    let next = std::sync::atomic::AtomicU64::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cfg.trials.max(1) as usize);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                let mut local: Vec<(usize, Vec<f64>)> = Vec::new();
                loop {
                    let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if t >= cfg.trials {
                        break;
                    }
                    qnet_obs::counter!("exp.runner.trials");
                    let seed = cfg.base_seed + t;
                    let net = build(seed);
                    let rates: Vec<f64> = algos.iter().map(|a| a.rate_on(&net, seed)).collect();
                    local.push((t as usize, rates));
                }
                let mut lock = rows.lock();
                for (t, rates) in local {
                    lock[t] = rates;
                }
            });
        }
    })
    .expect("worker thread panicked");

    let rows = rows.into_inner();
    let mut totals = vec![0.0f64; algos.len()];
    for rates in &rows {
        for (acc, r) in totals.iter_mut().zip(rates) {
            *acc += r;
        }
    }
    totals
        .into_iter()
        .map(|sum| sum / cfg.trials as f64)
        .collect()
}

/// Like [`mean_rates`], but returns the full per-trial rate matrix
/// (`result[t][a]` = algorithm `a`'s rate on trial `t`), for variance and
/// convergence analyses.
pub fn per_trial_rates<F>(build: F, algos: &[AlgoKind], cfg: TrialConfig) -> Vec<Vec<f64>>
where
    F: Fn(u64) -> QuantumNetwork + Sync,
{
    let _span = qnet_obs::span!("exp.runner.per_trial_rates");
    let rows = Mutex::new(vec![Vec::new(); cfg.trials as usize]);
    let next = std::sync::atomic::AtomicU64::new(0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cfg.trials.max(1) as usize);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if t >= cfg.trials {
                    break;
                }
                qnet_obs::counter!("exp.runner.trials");
                let seed = cfg.base_seed + t;
                let net = build(seed);
                let rates: Vec<f64> = algos.iter().map(|a| a.rate_on(&net, seed)).collect();
                rows.lock()[t as usize] = rates;
            });
        }
    })
    .expect("worker thread panicked");
    rows.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use muerp_core::model::NetworkSpec;

    fn quick_cfg() -> TrialConfig {
        TrialConfig {
            trials: 4,
            base_seed: 100,
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = NetworkSpec::paper_default();
        let algos = [AlgoKind::Alg3, AlgoKind::Alg4];
        let a = mean_rates(|s| spec.build(s), &algos, quick_cfg());
        let b = mean_rates(|s| spec.build(s), &algos, quick_cfg());
        assert_eq!(a, b, "parallel execution must not change results");
    }

    #[test]
    fn means_are_probabilities() {
        let spec = NetworkSpec::paper_default();
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, quick_cfg());
        assert_eq!(rates.len(), 5);
        for (a, r) in AlgoKind::ALL.iter().zip(&rates) {
            assert!((0.0..=1.0).contains(r), "{}: {r}", a.name());
        }
    }

    #[test]
    fn single_trial_matches_direct_call() {
        let spec = NetworkSpec::paper_default();
        let cfg = TrialConfig {
            trials: 1,
            base_seed: 42,
        };
        let means = mean_rates(|s| spec.build(s), &[AlgoKind::Alg3], cfg);
        let net = spec.build(42);
        let direct = AlgoKind::Alg3.rate_on(&net, 42);
        assert!((means[0] - direct).abs() < 1e-15);
    }
}
