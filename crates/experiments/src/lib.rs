//! # muerp-experiments — reproduction harness for the paper's evaluation
//!
//! One module per figure of §V (the paper has no numbered tables — all
//! results are the seven figure panels plus the headline percentages in
//! the §V-B text):
//!
//! | Function | Paper figure | Sweep |
//! |---|---|---|
//! | [`figures::fig5`] | Fig. 5 | topology ∈ {Waxman, Watts-Strogatz, Volchenkov} |
//! | [`figures::fig6a`] | Fig. 6(a) | number of users |
//! | [`figures::fig6b`] | Fig. 6(b) | number of switches |
//! | [`figures::fig7a`] | Fig. 7(a) | average degree |
//! | [`figures::fig7b`] | Fig. 7(b) | removed-edge ratio |
//! | [`figures::fig8a`] | Fig. 8(a) | qubits per switch |
//! | [`figures::fig8b`] | Fig. 8(b) | swap success rate |
//! | [`figures::headline`] | §V-B text | max improvement over baselines |
//!
//! Defaults mirror §V-A: Waxman topology, 50 switches + 10 users in a
//! 10 000 × 10 000 area, average degree 6, 4 qubits per switch,
//! `q = 0.9`, `α = 10⁻⁴`, 20 random networks averaged, rate 0 on
//! failure. Algorithm 2 always runs on a copy of the network whose
//! switches hold `2·|U|` qubits, exactly as Fig. 8(a)'s caption
//! prescribes ("The switches in Algorithm 2 ha\[ve\] 2|U| = 20 qubits").
//!
//! Run everything from the CLI:
//!
//! ```text
//! cargo run -p muerp-experiments --bin repro --release -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod beyond;
pub mod churn;
pub mod cli;
pub mod convergence;
pub mod figures;
pub mod profile;
pub mod runner;
pub mod serve;
pub mod stream;
pub mod suite;
pub mod table;

pub use churn::{churn_tables, ChurnConfig};
pub use runner::{mean_rates, TrialConfig};
pub use suite::AlgoKind;
pub use table::FigureTable;
