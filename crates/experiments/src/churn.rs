//! Survivability experiment: accumulated failures vs. repair strategy.
//!
//! `repro churn` replays a seeded [`FailurePlan`] against solved
//! paper-default networks and compares three responses after each
//! cumulative failure:
//!
//! * **Do-Nothing** — keep the original tree; rate drops to zero the
//!   moment the degraded network can no longer carry it;
//! * **Repair** — the incremental ladder
//!   ([`muerp_core::survive::repair`]): local re-route, then subtree
//!   re-attachment, then full re-solve;
//! * **Full-Resolve** — tear everything down and re-solve from scratch
//!   on the degraded network.
//!
//! A companion table records the repair ladder's telemetry (mean
//! channel-finder searches — the repair-latency proxy — and the share
//! of each ladder rung), and a third closes the loop through the
//! Monte-Carlo simulator: the same failure schedule replayed
//! mid-protocol via [`Simulator::run_churn`], with the repair callback
//! wired to the core ladder, against a do-nothing baseline.
//!
//! Everything is sequential and seeded: trial `t` uses
//! `base_seed + t` for the network, the solve, and the failure plan, so
//! a fixed invocation is bitwise deterministic.

use muerp_core::model::{NetworkSpec, QuantumNetwork};
use muerp_core::prelude::*;
use qnet_conformance::simcheck::solution_to_plan;
use qnet_sim::churn::{FailureEvent, PlanFix};
use qnet_sim::engine::{SimPhysics, Simulator};

use crate::table::FigureTable;

/// Configuration of a churn run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Number of random networks replayed.
    pub trials: u64,
    /// Failures injected per trial.
    pub failures: usize,
    /// Base RNG seed; trial `t` uses `base_seed + t` throughout.
    pub base_seed: u64,
    /// Protocol slots simulated in the Monte-Carlo replay (failures are
    /// scheduled uniformly over this horizon).
    pub sim_slots: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            trials: 8,
            failures: 4,
            base_seed: 0,
            sim_slots: 400,
        }
    }
}

/// Per-trial, per-failure-step accumulators.
#[derive(Clone, Debug, Default)]
struct StepStats {
    do_nothing: f64,
    repair: f64,
    full: f64,
    searches: f64,
    /// Counts per [`RepairMethod`], in `METHODS` order.
    methods: [f64; 5],
    samples: f64,
}

const METHODS: [RepairMethod; 5] = [
    RepairMethod::Untouched,
    RepairMethod::LocalReroute,
    RepairMethod::Reattach,
    RepairMethod::FullResolve,
    RepairMethod::Unrepairable,
];

fn method_slot(method: RepairMethod) -> usize {
    METHODS
        .iter()
        .position(|&m| m == method)
        .expect("METHODS is exhaustive")
}

/// Maps a core failure to the simulator's index-space event.
fn to_sim_event(net: &QuantumNetwork, failure: &Failure) -> FailureEvent {
    match failure.kind {
        FailureKind::LinkCut { edge } => {
            let (a, b) = net.graph().endpoints(edge);
            FailureEvent::LinkDown {
                at_slot: failure.at_slot,
                a: a.index(),
                b: b.index(),
            }
        }
        FailureKind::SwitchDeath { node } => FailureEvent::NodeDown {
            at_slot: failure.at_slot,
            node: node.index(),
        },
        FailureKind::CapacityLoss { node, qubits } => FailureEvent::Degrade {
            at_slot: failure.at_slot,
            node: node.index(),
            qubits,
        },
    }
}

/// Runs the churn battery and returns the three tables described in the
/// module docs (`churn`, `churn-repair`, `churn-sim`).
pub fn churn_tables(cfg: ChurnConfig) -> Vec<FigureTable> {
    let _span = qnet_obs::span!("exp.churn.run");
    let spec = NetworkSpec::paper_default();
    let mut steps: Vec<StepStats> = vec![StepStats::default(); cfg.failures + 1];
    let mut sim_repair_avail = 0.0;
    let mut sim_nothing_avail = 0.0;
    let mut sim_repairs = 0.0;
    let mut sim_unrepaired = [0.0f64; 2];
    let mut sim_trials = 0.0;

    for t in 0..cfg.trials {
        let seed = cfg.base_seed + t;
        let net = spec.build(seed);
        let Ok(base) = PrimBased::with_seed(seed).solve(&net) else {
            continue; // infeasible draw: nothing to churn
        };
        let plan = FailurePlan::random(&net, cfg.failures, cfg.sim_slots, seed);

        // Analytic track: rate after each cumulative failure.
        let mut state = NetworkState::new(&net);
        steps[0].do_nothing += base.rate.value();
        steps[0].repair += base.rate.value();
        steps[0].full += base.rate.value();
        steps[0].samples += 1.0;
        let mut current: Option<Solution> = Some(base.clone());
        for (k, failure) in plan.failures.iter().enumerate() {
            state.apply(&failure.kind);
            let step = &mut steps[k + 1];
            step.samples += 1.0;
            if state.admits_solution(&base) {
                step.do_nothing += base.rate.value();
            }
            let (repaired, method, searches) = match &current {
                Some(solution) => {
                    let outcome = repair(&net, solution, &state);
                    (outcome.solution.clone(), outcome.method, outcome.searches)
                }
                // Nothing left to repair incrementally: retry from scratch.
                None => {
                    let (solution, searches) = full_resolve(&net, &state);
                    let method = if solution.is_some() {
                        RepairMethod::FullResolve
                    } else {
                        RepairMethod::Unrepairable
                    };
                    (solution, method, searches)
                }
            };
            step.repair += repaired.as_ref().map_or(0.0, |s| s.rate.value());
            step.searches += searches as f64;
            step.methods[method_slot(method)] += 1.0;
            current = repaired;
            let (scratch, _) = full_resolve(&net, &state);
            step.full += scratch.map_or(0.0, |s| s.rate.value());
        }

        // Monte-Carlo track: the same schedule replayed mid-protocol.
        let events: Vec<FailureEvent> = plan
            .failures
            .iter()
            .map(|f| to_sim_event(&net, f))
            .collect();
        let physics = SimPhysics {
            swap_success: net.physics().swap_success,
            attenuation: net.physics().attenuation,
            fusion_success: None,
        };
        let mut sim = Simulator::new(solution_to_plan(&net, &base), physics, seed);
        let mut cb_state = NetworkState::new(&net);
        let mut cb_solution = Some(base.clone());
        let mut applied = 0usize;
        let repaired_stats = sim.run_churn(cfg.sim_slots, &events, |event, _| {
            // Catch the callback's network state up with every event the
            // simulator has injected so far, including non-breaking ones.
            while applied < events.len() {
                let due = &events[applied];
                cb_state.apply(&plan.failures[applied].kind);
                applied += 1;
                if due == event {
                    break;
                }
            }
            let fixed = match &cb_solution {
                Some(solution) => {
                    let outcome = repair(&net, solution, &cb_state);
                    outcome.solution.clone().map(|s| {
                        let rate = s.rate.value();
                        let plan = solution_to_plan(&net, &s);
                        cb_solution = Some(s);
                        PlanFix {
                            plan,
                            method: outcome.method.name(),
                            finder_runs: outcome.searches,
                            rate,
                        }
                    })
                }
                None => {
                    let (solution, searches) = full_resolve(&net, &cb_state);
                    solution.map(|s| {
                        let rate = s.rate.value();
                        let plan = solution_to_plan(&net, &s);
                        cb_solution = Some(s);
                        PlanFix {
                            plan,
                            method: RepairMethod::FullResolve.name(),
                            finder_runs: searches,
                            rate,
                        }
                    })
                }
            };
            if fixed.is_none() {
                cb_solution = None;
            }
            fixed
        });
        let mut nothing_sim = Simulator::new(solution_to_plan(&net, &base), physics, seed);
        let nothing_stats = nothing_sim.run_churn(cfg.sim_slots, &events, |_, _| None);
        sim_repair_avail += repaired_stats.availability();
        sim_nothing_avail += nothing_stats.availability();
        sim_repairs += repaired_stats.repairs as f64;
        sim_unrepaired[0] += repaired_stats.unrepaired_slots as f64 / cfg.sim_slots.max(1) as f64;
        sim_unrepaired[1] += nothing_stats.unrepaired_slots as f64 / cfg.sim_slots.max(1) as f64;
        sim_trials += 1.0;
    }

    let mean = |sum: f64, n: f64| if n > 0.0 { sum / n } else { 0.0 };
    let rate_rows: Vec<(String, Vec<f64>)> = steps
        .iter()
        .enumerate()
        .map(|(k, s)| {
            (
                k.to_string(),
                vec![
                    mean(s.do_nothing, s.samples),
                    mean(s.repair, s.samples),
                    mean(s.full, s.samples),
                ],
            )
        })
        .collect();
    let repair_rows: Vec<(String, Vec<f64>)> = steps
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, s)| {
            let mut row = vec![mean(s.searches, s.samples)];
            row.extend(s.methods.iter().map(|&c| mean(c, s.samples)));
            (k.to_string(), row)
        })
        .collect();
    let sim_rows = vec![
        (
            "availability".to_string(),
            vec![
                mean(sim_repair_avail, sim_trials),
                mean(sim_nothing_avail, sim_trials),
            ],
        ),
        (
            "unrepaired-frac".to_string(),
            vec![
                mean(sim_unrepaired[0], sim_trials),
                mean(sim_unrepaired[1], sim_trials),
            ],
        ),
        (
            "repairs".to_string(),
            vec![mean(sim_repairs, sim_trials), 0.0],
        ),
    ];

    vec![
        FigureTable {
            id: "churn",
            title: format!(
                "Rate retained after cumulative failures ({} trials)",
                cfg.trials
            ),
            x_label: "failures",
            algos: vec!["Do-Nothing", "Repair", "Full-Resolve"],
            rows: rate_rows,
        },
        FigureTable {
            id: "churn-repair",
            title: "Repair ladder telemetry per failure".into(),
            x_label: "failure",
            algos: vec![
                "searches",
                "untouched",
                "local-reroute",
                "reattach",
                "full-resolve",
                "unrepairable",
            ],
            rows: repair_rows,
        },
        FigureTable {
            id: "churn-sim",
            title: format!(
                "Mid-protocol churn replay over {} slots (Monte-Carlo)",
                cfg.sim_slots
            ),
            x_label: "metric",
            algos: vec!["Repair", "Do-Nothing"],
            rows: sim_rows,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChurnConfig {
        ChurnConfig {
            trials: 3,
            failures: 3,
            base_seed: 1,
            sim_slots: 60,
        }
    }

    #[test]
    fn churn_tables_have_the_documented_shape() {
        let tables = churn_tables(small());
        assert_eq!(tables.len(), 3);
        let churn = &tables[0];
        assert_eq!(churn.id, "churn");
        assert_eq!(churn.rows.len(), 4, "row 0 (intact) + one per failure");
        assert_eq!(churn.algos, vec!["Do-Nothing", "Repair", "Full-Resolve"]);
        let telemetry = &tables[1];
        assert_eq!(telemetry.rows.len(), 3);
        assert_eq!(telemetry.algos.len(), 6);
        let sim = &tables[2];
        assert_eq!(sim.rows.len(), 3);
    }

    #[test]
    fn repair_dominates_do_nothing_on_every_row() {
        let tables = churn_tables(small());
        for (x, rates) in &tables[0].rows {
            let (nothing, repaired) = (rates[0], rates[1]);
            assert!(
                repaired >= nothing - 1e-12,
                "row {x}: repair {repaired} below do-nothing {nothing}"
            );
        }
        // Method shares on each telemetry row sum to one repair attempt.
        for (x, row) in &tables[1].rows {
            let share: f64 = row[1..].iter().sum();
            assert!((share - 1.0).abs() < 1e-9, "row {x}: shares sum to {share}");
        }
    }

    #[test]
    fn churn_tables_are_bitwise_deterministic() {
        let a = churn_tables(small());
        let b = churn_tables(small());
        assert_eq!(a, b);
    }
}
