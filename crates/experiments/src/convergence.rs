//! How many random networks does the §V-A protocol need?
//!
//! The paper averages 20 networks per cell "to reduce the impact of
//! network topology randomness". This module quantifies that choice:
//! mean rates at increasing trial counts, plus the across-network
//! dispersion (coefficient of variation) of each algorithm at the
//! default cell — giving the reproduction error bars the paper omits.

use muerp_core::model::NetworkSpec;

use crate::runner::{per_trial_rates, TrialConfig};
use crate::suite::AlgoKind;
use crate::table::FigureTable;

/// Mean rate per algorithm at growing trial counts (all prefixes of one
/// seed sequence, so rows are nested samples).
pub fn trial_sensitivity(max_trials: u64, base_seed: u64) -> FigureTable {
    let _span = qnet_obs::span!("exp.convergence.trial_sensitivity");
    let spec = NetworkSpec::paper_default();
    let all = per_trial_rates(
        |s| spec.build(s),
        &AlgoKind::ALL,
        TrialConfig {
            trials: max_trials,
            base_seed,
        },
    );
    let mut rows = Vec::new();
    let mut n = 5u64;
    while n <= max_trials {
        let means: Vec<f64> = (0..AlgoKind::ALL.len())
            .map(|a| all[..n as usize].iter().map(|row| row[a]).sum::<f64>() / n as f64)
            .collect();
        rows.push((n.to_string(), means));
        n *= 2;
    }
    FigureTable {
        id: "convergence_trials",
        title: "Mean rate vs. number of averaged networks".into(),
        x_label: "trials",
        algos: AlgoKind::ALL.iter().map(|a| a.name()).collect(),
        rows,
    }
}

/// Across-network dispersion at the default cell: mean, standard
/// deviation, and coefficient of variation per algorithm.
pub fn dispersion(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.convergence.dispersion");
    let spec = NetworkSpec::paper_default();
    let all = per_trial_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
    let n = cfg.trials as f64;
    let mut rows = Vec::new();
    for (a, algo) in AlgoKind::ALL.iter().enumerate() {
        let mean = all.iter().map(|row| row[a]).sum::<f64>() / n;
        let var = all.iter().map(|row| (row[a] - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        let std = var.sqrt();
        let cv = if mean > 0.0 { std / mean } else { 0.0 };
        rows.push((algo.name().to_string(), vec![mean, std, cv]));
    }
    FigureTable {
        id: "convergence_dispersion",
        title: "Across-network dispersion at the default cell".into(),
        x_label: "algorithm",
        algos: vec!["mean", "std", "cv"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_rows_are_prefix_nested() {
        let t = trial_sensitivity(10, 300);
        assert_eq!(t.rows.len(), 2); // n = 5, 10
        assert_eq!(t.rows[0].0, "5");
        assert_eq!(t.rows[1].0, "10");
        for (_, means) in &t.rows {
            assert!(means.iter().all(|m| (0.0..=1.0).contains(m)));
        }
    }

    #[test]
    fn dispersion_is_consistent() {
        let t = dispersion(TrialConfig {
            trials: 6,
            base_seed: 400,
        });
        assert_eq!(t.rows.len(), 5);
        for (name, v) in &t.rows {
            let (mean, std, cv) = (v[0], v[1], v[2]);
            assert!(mean >= 0.0, "{name}");
            assert!(std >= 0.0, "{name}");
            if mean > 0.0 {
                assert!((cv - std / mean).abs() < 1e-12, "{name}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = dispersion(TrialConfig {
            trials: 4,
            base_seed: 7,
        });
        let b = dispersion(TrialConfig {
            trials: 4,
            base_seed: 7,
        });
        assert_eq!(a, b);
    }
}
