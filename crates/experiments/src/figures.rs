//! One function per panel of the paper's §V evaluation.
//!
//! Every function takes a [`TrialConfig`] (default: 20 networks averaged,
//! matching §V-A) and returns a [`FigureTable`] whose rows mirror the
//! paper's x axis. The *shapes* these tables must reproduce are recorded
//! in `EXPERIMENTS.md` at the workspace root.

use muerp_core::model::NetworkSpec;
use qnet_topology::{SpatialGraph, TopologyKind};
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::runner::{mean_rates, TrialConfig};
use crate::suite::AlgoKind;
use crate::table::FigureTable;

fn algo_names() -> Vec<&'static str> {
    AlgoKind::ALL.iter().map(|a| a.name()).collect()
}

/// Fig. 5 — entanglement rate vs. network topology.
pub fn fig5(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig5");
    let mut rows = Vec::new();
    for kind in TopologyKind::ALL {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.kind = kind;
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
        rows.push((kind.name().to_string(), rates));
    }
    FigureTable {
        id: "fig5",
        title: "Entanglement rate vs. network topology".into(),
        x_label: "topology",
        algos: algo_names(),
        rows,
    }
}

/// Fig. 6(a) — entanglement rate vs. number of users.
pub fn fig6a(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig6a");
    let mut rows = Vec::new();
    for users in [4usize, 6, 8, 10, 12, 14] {
        let mut spec = NetworkSpec::paper_default();
        // Keep 50 switches; total nodes = switches + users.
        spec.topology.nodes = 50 + users;
        spec.users = users;
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
        rows.push((users.to_string(), rates));
    }
    FigureTable {
        id: "fig6a",
        title: "Entanglement rate vs. number of users".into(),
        x_label: "users",
        algos: algo_names(),
        rows,
    }
}

/// Fig. 6(b) — entanglement rate vs. number of switches.
pub fn fig6b(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig6b");
    let mut rows = Vec::new();
    for switches in [10usize, 20, 30, 40, 50] {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.nodes = switches + spec.users;
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
        rows.push((switches.to_string(), rates));
    }
    FigureTable {
        id: "fig6b",
        title: "Entanglement rate vs. number of switches".into(),
        x_label: "switches",
        algos: algo_names(),
        rows,
    }
}

/// Fig. 7(a) — entanglement rate vs. average degree of a switch.
pub fn fig7a(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig7a");
    let mut rows = Vec::new();
    for degree in [4u32, 6, 8, 10] {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.avg_degree = degree as f64;
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
        rows.push((degree.to_string(), rates));
    }
    FigureTable {
        id: "fig7a",
        title: "Entanglement rate vs. average degree".into(),
        x_label: "degree",
        algos: algo_names(),
        rows,
    }
}

/// Fig. 7(b) — entanglement rate vs. removed-edge ratio.
///
/// Per §V-B: a 600-fiber network (10 users, 50 switches, average degree
/// 20), removing 30 random fibers per step — cumulatively, so each step's
/// network is a subgraph of the previous one — until nothing feasible
/// remains.
pub fn fig7b(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig7b");
    let mut spec = NetworkSpec::paper_default();
    spec.topology.avg_degree = 20.0; // 60 nodes → 600 edges
    let total_edges = 600usize;
    let step = 30usize;
    let steps: Vec<usize> = (0..=19).collect(); // ratios 0.00 … 0.95

    let mut rows: Vec<(String, Vec<f64>)> = steps
        .iter()
        .map(|k| {
            let ratio = (k * step) as f64 / total_edges as f64;
            (format!("{ratio:.2}"), vec![0.0; AlgoKind::ALL.len()])
        })
        .collect();

    // One topology + removal order per trial; all steps share it so the
    // removal is cumulative, as the paper describes.
    for t in 0..cfg.trials {
        let seed = cfg.base_seed + t;
        let spatial = spec.topology.generate(seed);
        debug_assert_eq!(spatial.edge_count(), total_edges);
        let mut order: Vec<usize> = (0..spatial.edge_count()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
        order.shuffle(&mut rng);

        for (row, &k) in rows.iter_mut().zip(&steps) {
            let removed: std::collections::HashSet<usize> = order[..(k * step).min(order.len())]
                .iter()
                .copied()
                .collect();
            let pruned: SpatialGraph = spatial.filter_edges(|e| !removed.contains(&e.id.index()));
            let net = spec.build_from_spatial(&pruned, seed);
            for (acc, algo) in row.1.iter_mut().zip(&AlgoKind::ALL) {
                *acc += algo.rate_on(&net, seed);
            }
        }
    }
    for row in &mut rows {
        for v in &mut row.1 {
            *v /= cfg.trials as f64;
        }
    }

    FigureTable {
        id: "fig7b",
        title: "Entanglement rate vs. removed edges ratio".into(),
        x_label: "removed",
        algos: algo_names(),
        rows,
    }
}

/// Fig. 8(a) — entanglement rate vs. qubits per switch.
///
/// Algorithm 2 is exempt from the sweep (its switches always hold
/// `2·|U| = 20` qubits), which [`AlgoKind::Alg2`] implements.
pub fn fig8a(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig8a");
    let mut rows = Vec::new();
    for qubits in [2u32, 4, 6, 8] {
        let mut spec = NetworkSpec::paper_default();
        spec.qubits_per_switch = qubits;
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
        rows.push((qubits.to_string(), rates));
    }
    FigureTable {
        id: "fig8a",
        title: "Entanglement rate vs. qubits per switch".into(),
        x_label: "qubits",
        algos: algo_names(),
        rows,
    }
}

/// Fig. 8(b) — entanglement rate vs. successful swapping rate `q`.
pub fn fig8b(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.fig8b");
    let mut rows = Vec::new();
    for q in [0.6f64, 0.7, 0.8, 0.9, 1.0] {
        let mut spec = NetworkSpec::paper_default();
        spec.physics.swap_success = q;
        let rates = mean_rates(|s| spec.build(s), &AlgoKind::ALL, cfg);
        rows.push((format!("{q:.1}"), rates));
    }
    FigureTable {
        id: "fig8b",
        title: "Entanglement rate vs. swap success rate".into(),
        x_label: "q",
        algos: algo_names(),
        rows,
    }
}

/// §V-B headline numbers: the maximum improvement of each proposed
/// algorithm over each baseline across all sweeps of Figs. 5–8
/// (the paper reports e.g. "up to 5347% … compared to N-FUSION").
///
/// Improvement in a cell = `(alg / baseline − 1) × 100%`, taken only
/// where the baseline is feasible (rate > 0); the maximum over all cells
/// is reported.
pub fn headline(cfg: TrialConfig) -> FigureTable {
    let _span = qnet_obs::span!("exp.figures.headline");
    let tables = [
        fig5(cfg),
        fig6a(cfg),
        fig6b(cfg),
        fig7a(cfg),
        fig8a(cfg),
        fig8b(cfg),
    ];
    let proposed = [AlgoKind::Alg2, AlgoKind::Alg3, AlgoKind::Alg4];
    let baselines = [AlgoKind::NFusion, AlgoKind::EQCast];

    let mut rows = Vec::new();
    for alg in proposed {
        let mut cells = Vec::new();
        for base in baselines {
            let mut best = 0.0f64;
            for t in &tables {
                let ai = t.algos.iter().position(|n| *n == alg.name()).expect("col");
                let bi = t.algos.iter().position(|n| *n == base.name()).expect("col");
                for (_, rates) in &t.rows {
                    if rates[bi] > 0.0 && rates[ai] > 0.0 {
                        best = best.max((rates[ai] / rates[bi] - 1.0) * 100.0);
                    }
                }
            }
            cells.push(best);
        }
        rows.push((alg.name().to_string(), cells));
    }

    FigureTable {
        id: "headline",
        title: "Max improvement over baselines across Figs. 5-8 (%)".into(),
        x_label: "algorithm",
        algos: vec!["vs N-Fusion (%)", "vs E-Q-CAST (%)"],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrialConfig {
        TrialConfig {
            trials: 2,
            base_seed: 7,
        }
    }

    #[test]
    fn fig5_has_three_topology_rows() {
        let t = fig5(tiny());
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].0, "Waxman");
        assert_eq!(t.algos.len(), 5);
    }

    #[test]
    fn fig6a_rate_decreases_with_users_for_alg2() {
        // Alg-2's mean rate must fall monotonically with more users —
        // more channels in the product (robust even at 2 trials because
        // Alg-2 is near-deterministic per network).
        let t = fig6a(TrialConfig {
            trials: 3,
            base_seed: 1,
        });
        let col = t.algos.iter().position(|a| *a == "Alg-2").unwrap();
        let series: Vec<f64> = t.rows.iter().map(|(_, r)| r[col]).collect();
        // Different user counts sample different random topologies, so
        // adjacent steps can jitter at low trial counts; the endpoints
        // must still show the Fig. 6(a) trend clearly.
        assert!(
            series.last().unwrap() < &(series.first().unwrap() * 0.5),
            "14 users must be much harder than 4: {series:?}"
        );
    }

    #[test]
    fn fig6b_and_fig7a_have_expected_rows() {
        let t = fig6b(tiny());
        assert_eq!(
            t.rows.iter().map(|(x, _)| x.as_str()).collect::<Vec<_>>(),
            vec!["10", "20", "30", "40", "50"]
        );
        let t = fig7a(tiny());
        assert_eq!(
            t.rows.iter().map(|(x, _)| x.as_str()).collect::<Vec<_>>(),
            vec!["4", "6", "8", "10"]
        );
        for (_, rates) in &t.rows {
            assert_eq!(rates.len(), 5);
        }
    }

    #[test]
    fn fig8b_rate_increases_with_q_for_alg2() {
        let t = fig8b(TrialConfig {
            trials: 3,
            base_seed: 2,
        });
        let col = t.algos.iter().position(|a| *a == "Alg-2").unwrap();
        let series: Vec<f64> = t.rows.iter().map(|(_, r)| r[col]).collect();
        for w in series.windows(2) {
            assert!(w[1] >= w[0], "rate must rise with q: {series:?}");
        }
    }

    #[test]
    fn fig7b_removal_is_cumulative_and_decreasing_overall() {
        let t = fig7b(TrialConfig {
            trials: 2,
            base_seed: 3,
        });
        assert_eq!(t.rows.len(), 20);
        let col = t.algos.iter().position(|a| *a == "Alg-2").unwrap();
        let first = t.rows.first().unwrap().1[col];
        let last = t.rows.last().unwrap().1[col];
        assert!(
            last <= first,
            "removing 95% of fibers cannot help: {first} → {last}"
        );
    }

    #[test]
    fn fig8a_alg2_is_flat_across_qubit_sweep() {
        // Alg-2 always gets 2|U| qubits, so its rate must not depend on
        // the swept capacity.
        let t = fig8a(TrialConfig {
            trials: 2,
            base_seed: 4,
        });
        let col = t.algos.iter().position(|a| *a == "Alg-2").unwrap();
        let series: Vec<f64> = t.rows.iter().map(|(_, r)| r[col]).collect();
        for w in series.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-12,
                "Alg-2 must be capacity-exempt: {series:?}"
            );
        }
    }

    #[test]
    fn headline_reports_positive_improvements() {
        let t = headline(tiny());
        assert_eq!(t.rows.len(), 3);
        // Alg-2 must beat both baselines somewhere.
        let alg2 = &t.rows[0].1;
        assert!(
            alg2.iter().all(|&v| v > 0.0),
            "Alg-2 improvements: {alg2:?}"
        );
    }
}
