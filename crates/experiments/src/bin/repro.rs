//! `repro` — regenerate every figure of the MUERP paper.
//!
//! ```text
//! repro <fig5|fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|headline|ablations|convergence|beyond|all> \
//!       [--trials N] [--seed S] [--out DIR]
//! ```
//!
//! Prints each figure as an aligned text table and, with `--out`, writes
//! one CSV per table into the directory. `--obs-report` additionally
//! snapshots the observability state (span tree, counters, histograms)
//! into one `results/obs/<id>.json` per suite.

use std::path::Path;
use std::process::ExitCode;

use muerp_experiments::cli;
use muerp_experiments::{ablations, beyond, convergence, figures};
use muerp_experiments::{FigureTable, TrialConfig};

fn run_one(id: &str, cfg: TrialConfig) -> Vec<FigureTable> {
    match id {
        "fig5" => vec![figures::fig5(cfg)],
        "fig6a" => vec![figures::fig6a(cfg)],
        "fig6b" => vec![figures::fig6b(cfg)],
        "fig7a" => vec![figures::fig7a(cfg)],
        "fig7b" => vec![figures::fig7b(cfg)],
        "fig8a" => vec![figures::fig8a(cfg)],
        "fig8b" => vec![figures::fig8b(cfg)],
        "headline" => vec![figures::headline(cfg)],
        "ablations" => vec![
            ablations::seed_choice(cfg),
            ablations::retention_policy(cfg),
            ablations::fusion_model(cfg),
            ablations::local_search(cfg),
        ],
        "convergence" => vec![
            convergence::trial_sensitivity(cfg.trials.max(20) * 2, cfg.base_seed),
            convergence::dispersion(cfg),
        ],
        "beyond" => vec![
            beyond::beyond_paper(cfg),
            beyond::multi_group_concurrency(cfg),
        ],
        other => unreachable!("validated id {other}"),
    }
}

fn main() -> ExitCode {
    let args = match cli::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if args.obs_report && std::env::var_os("MUERP_OBS").is_none() {
        // Reports want the span tree; respect an explicit MUERP_OBS.
        qnet_obs::set_level(qnet_obs::ObsLevel::Full);
    }
    println!(
        "MUERP reproduction — {} trial(s) per cell, base seed {}\n",
        args.cfg.trials, args.cfg.base_seed
    );
    for id in &args.which {
        let started = std::time::Instant::now();
        if args.obs_report {
            // Per-suite deltas: zero everything before each suite runs.
            qnet_obs::global().reset();
            qnet_obs::reset_spans();
        }
        for table in run_one(id, args.cfg) {
            println!("{}", table.render_text());
            if let Some(dir) = &args.out {
                let path = dir.join(format!("{}.csv", table.id));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
        }
        if args.obs_report {
            let report = qnet_obs::RunReport::capture(id);
            match qnet_obs::write_report(Path::new("results/obs"), &report) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write obs report for {id}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("({id} took {:.1?})\n", started.elapsed());
    }
    ExitCode::SUCCESS
}
