//! `repro` — regenerate every figure of the MUERP paper.
//!
//! ```text
//! repro <fig5|fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|headline|ablations|convergence|beyond|all> \
//!       [--trials N] [--seed S] [--out DIR]
//! repro obs-diff <baseline.json> <candidate.json> \
//!       [--span-ratio R] [--counter-ratio R] [--min-span-us N] [--warn-only]
//! repro fuzz --budget <n> [--seed S] [--churn] [--delta] [--serve] [--out FILE]
//! repro churn [--trials N] [--failures F] [--seed S] [--slots N] \
//!       [--out DIR] [--obs-report]
//! repro profile <paper-default|waxman-240> [--seed S] [--out DIR] \
//!       [--top N] [--bench-out FILE]
//! repro stream [--slots N] [--window W] [--seed S] [--arrival P] \
//!       [--sample-every N] [--churn-every N] [--out DIR]
//! repro serve [--slots N] [--round R] [--queue Q] [--policy P] \
//!       [--seed S] [--arrival P] [--out DIR]
//! ```
//!
//! Prints each figure as an aligned text table and, with `--out`, writes
//! one CSV per table into the directory. `--obs-report` additionally
//! snapshots the observability state (span tree, counters, histograms)
//! into one `results/obs/<id>.json` per suite — plus, at
//! `MUERP_OBS=trace`, the flight-recorder contents as
//! `results/obs/<id>.trace.jsonl`.
//!
//! `obs-diff` compares two such reports and exits non-zero when the
//! candidate regresses past the thresholds (the CI gate).
//!
//! `fuzz` sweeps seeded random topology specs through the conformance
//! harness (generate → solve → independent audit → differential
//! checks); on any failure it shrinks the spec to a minimal
//! counterexample, writes the JSON report to `--out`, and exits 2.
//! `--churn` additionally injects one seeded failure per trial and
//! checks the repair ladder's invariants. `--delta` additionally pushes
//! a seeded capacity-delta sequence through the dirty-set channel-finder
//! cache, cross-checking every step bitwise against a cold
//! recomputation and shrinking failing delta scripts. `--serve`
//! additionally replays a seeded request script through the batched
//! admission engine and the sequential FCFS oracle, comparing every
//! decision and re-auditing admitted solutions, shrinking failing
//! scripts to a minimal admission script.
//!
//! `churn` runs the survivability battery: seeded failure plans
//! replayed against solved networks, comparing do-nothing vs. the
//! incremental repair ladder vs. full re-solve, plus a Monte-Carlo
//! mid-protocol replay; output follows the same table/CSV/obs-report
//! flow as the experiment runner, under the id `churn`.
//!
//! `stream` drives the sustained-load workload (diurnal arrivals,
//! heavy-tailed group sizes, hot-spot users, and — with
//! `--churn-every N` — periodic capacity withdrawals the delta-aware
//! cache absorbs incrementally) and writes the windowed
//! telemetry artifacts: `stream-windows.csv`, `stream-summary.csv`,
//! the `stream.metrics.jsonl` window stream, a schema-4 `stream.json`
//! run report, and a Prometheus-style `stream.prom`. Everything except
//! the stderr throughput line is byte-deterministic for a fixed seed.
//!
//! `serve` runs the batched streaming admission service: the seeded
//! request stream consumed in fixed-width admission rounds through a
//! bounded queue, a pluggable admission policy
//! (`fcfs|smallest|weighted`), one warm-batch cache pass per round,
//! and delta-engine departure restores. Artifacts mirror `stream`:
//! `serve-rounds.csv`, `serve-summary.csv`, `serve.metrics.jsonl`, a
//! schema-4 `serve.json` report, and `serve.prom` — all
//! byte-deterministic for a fixed seed, with the decision-level
//! artifacts additionally thread-count invariant.
//!
//! `profile` runs one scenario single-threaded at `MUERP_OBS=trace`
//! and writes the perf-attribution artifacts: deterministic facts to
//! stdout and `profile-<scenario>.csv`, the wall-time attribution to
//! stderr and `profile-<scenario>-times.csv`, a schema-3 run report,
//! and a Chrome/Perfetto `trace.json`. Build with
//! `--features alloc-profile` to add allocation counts.

// Counting global allocator behind the profiling feature: the rest of
// the binary pays nothing unless `alloc-profile` is compiled in.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: qnet_obs::CountingAllocator = qnet_obs::CountingAllocator;

use std::path::Path;
use std::process::ExitCode;

use muerp_experiments::cli::{
    self, ChurnArgs, Command, FuzzArgs, ObsDiffArgs, ProfileArgs, ServeArgs, StreamArgs,
};
use muerp_experiments::{ablations, beyond, churn, convergence, figures, profile, serve, stream};
use muerp_experiments::{FigureTable, TrialConfig};

fn run_one(id: &str, cfg: TrialConfig) -> Vec<FigureTable> {
    match id {
        "fig5" => vec![figures::fig5(cfg)],
        "fig6a" => vec![figures::fig6a(cfg)],
        "fig6b" => vec![figures::fig6b(cfg)],
        "fig7a" => vec![figures::fig7a(cfg)],
        "fig7b" => vec![figures::fig7b(cfg)],
        "fig8a" => vec![figures::fig8a(cfg)],
        "fig8b" => vec![figures::fig8b(cfg)],
        "headline" => vec![figures::headline(cfg)],
        "ablations" => vec![
            ablations::seed_choice(cfg),
            ablations::retention_policy(cfg),
            ablations::fusion_model(cfg),
            ablations::local_search(cfg),
        ],
        "convergence" => vec![
            convergence::trial_sensitivity(cfg.trials.max(20) * 2, cfg.base_seed),
            convergence::dispersion(cfg),
        ],
        "beyond" => vec![
            beyond::beyond_paper(cfg),
            beyond::multi_group_concurrency(cfg),
        ],
        other => unreachable!("validated id {other}"),
    }
}

/// Loads one serialized [`qnet_obs::RunReport`] from disk.
fn load_report(path: &Path) -> Result<qnet_obs::RunReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = serde_json::from_str(&text)
        .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    qnet_obs::RunReport::from_json(&value).ok_or_else(|| {
        format!(
            "{} does not look like a run report (or its schema_version is newer than {})",
            path.display(),
            qnet_obs::SCHEMA_VERSION
        )
    })
}

/// Loudly surfaces flight-recorder evictions (the `obs.trace.dropped`
/// counter) so a truncated trace is never mistaken for a complete one.
fn warn_on_trace_drops(report: &qnet_obs::RunReport, context: &str) {
    let dropped = report.counter_total("obs.trace.dropped");
    if dropped > 0 {
        eprintln!(
            "WARNING: {context}: flight recorder evicted {dropped} event(s) \
             (obs.trace.dropped) — the trace is incomplete; raise \
             MUERP_OBS_TRACE_CAP to keep the full run"
        );
    }
    let spans_dropped = report.counter_total("obs.spans.dropped");
    if spans_dropped > 0 {
        eprintln!(
            "WARNING: {context}: span store capped, {spans_dropped} span(s) dropped \
             (obs.spans.dropped) — attribution is partial; raise MUERP_OBS_SPAN_CAP"
        );
    }
}

fn run_obs_diff(args: &ObsDiffArgs) -> ExitCode {
    let (baseline, candidate) = match (load_report(&args.baseline), load_report(&args.candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };
    warn_on_trace_drops(&candidate, "candidate report");
    // An old baseline is migrated on read; make that visible so a clean
    // diff against a pre-migration file is never mistaken for a
    // same-schema comparison.
    if baseline.schema_version < qnet_obs::SCHEMA_VERSION {
        println!(
            "note: baseline {} is schema version {} — migrated on read to version {}",
            args.baseline.display(),
            baseline.schema_version,
            qnet_obs::SCHEMA_VERSION
        );
    }
    let diff = qnet_obs::diff_reports(&baseline, &candidate, &args.options());
    print!("{}", diff.render_table());
    if diff.has_regressions() {
        let n = diff.regression_count();
        if args.warn_only {
            println!("obs-diff: {n} regression(s) — ignored (--warn-only)");
            ExitCode::SUCCESS
        } else {
            println!("obs-diff: {n} regression(s)");
            ExitCode::from(2)
        }
    } else {
        ExitCode::SUCCESS
    }
}

fn run_fuzz(args: &FuzzArgs) -> ExitCode {
    let started = std::time::Instant::now();
    let outcome = qnet_conformance::run_fuzz(args.config());
    println!(
        "fuzz: {} trial(s), base seed {}, {} failure(s) ({:.1?})",
        outcome.trials,
        args.base_seed,
        outcome.failures.len(),
        started.elapsed()
    );
    if outcome.is_clean() {
        return ExitCode::SUCCESS;
    }
    for failure in &outcome.failures {
        println!(
            "  seed {}: {} (shrunk {} step(s) to {} nodes / {} users / {} qubits)",
            failure.original.seed,
            failure.error,
            failure.shrink_steps,
            failure.shrunk.spec.topology.nodes,
            failure.shrunk.spec.users,
            failure.shrunk.spec.qubits_per_switch,
        );
    }
    let report = serde_json::to_string_pretty(&outcome.to_json()).expect("report is plain JSON");
    match std::fs::write(&args.out, report) {
        Ok(()) => println!("wrote {}", args.out.display()),
        Err(e) => {
            eprintln!("cannot write {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::from(2)
}

fn run_churn(args: &ChurnArgs) -> ExitCode {
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if args.obs_report && std::env::var_os("MUERP_OBS").is_none() {
        qnet_obs::set_level(qnet_obs::ObsLevel::Full);
    }
    if args.obs_report {
        qnet_obs::global().reset();
        qnet_obs::reset_spans();
        qnet_obs::reset_trace();
    }
    let started = std::time::Instant::now();
    println!(
        "MUERP survivability — {} trial(s), {} failure(s) each, base seed {}\n",
        args.cfg.trials, args.cfg.failures, args.cfg.base_seed
    );
    for table in churn::churn_tables(args.cfg) {
        println!("{}", table.render_text());
        if let Some(dir) = &args.out {
            let path = dir.join(format!("{}.csv", table.id));
            if let Err(e) = std::fs::write(&path, table.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    }
    if args.obs_report {
        let report = qnet_obs::RunReport::capture("churn");
        warn_on_trace_drops(&report, "churn");
        match qnet_obs::write_report(Path::new("results/obs"), &report) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write obs report for churn: {e}");
                return ExitCode::FAILURE;
            }
        }
        if qnet_obs::trace_enabled() {
            match qnet_obs::write_trace_jsonl(Path::new("results/obs"), "churn") {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write trace for churn: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!("(churn took {:.1?})", started.elapsed());
    ExitCode::SUCCESS
}

fn run_profile_cmd(args: &ProfileArgs) -> ExitCode {
    let started = std::time::Instant::now();
    let (run, written) = match profile::run_profile(args) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Deterministic facts on stdout (CI byte-compares these) …
    print!("{}", run.render_text());
    // … wall-clock attribution on stderr (jitters run to run).
    eprint!("{}", run.render_times(args.top));
    warn_on_trace_drops(&run.report, &run.scenario);
    for path in &written {
        println!("wrote {}", path.display());
    }
    eprintln!("(profile {} took {:.1?})", run.scenario, started.elapsed());
    ExitCode::SUCCESS
}

fn run_stream_cmd(args: &StreamArgs) -> ExitCode {
    let (run, written) = match stream::run_stream(args) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Deterministic facts on stdout (CI byte-compares the artifacts) …
    print!("{}", run.render_text());
    warn_on_trace_drops(&run.report, "stream");
    for path in &written {
        println!("wrote {}", path.display());
    }
    // … wall-clock throughput on stderr (jitters run to run).
    eprint!("{}", run.render_throughput());
    ExitCode::SUCCESS
}

fn run_serve_cmd(args: &ServeArgs) -> ExitCode {
    let (run, written) = match serve::run_serve(args) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Deterministic facts on stdout (CI byte-compares the artifacts) …
    print!("{}", run.render_text());
    warn_on_trace_drops(&run.report, "serve");
    for path in &written {
        println!("wrote {}", path.display());
    }
    // … wall-clock throughput on stderr (jitters run to run).
    eprint!("{}", run.render_throughput());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match cli::parse_command(std::env::args().skip(1)) {
        Ok(Command::Run(a)) => a,
        Ok(Command::ObsDiff(d)) => return run_obs_diff(&d),
        Ok(Command::Fuzz(f)) => return run_fuzz(&f),
        Ok(Command::Churn(c)) => return run_churn(&c),
        Ok(Command::Profile(p)) => return run_profile_cmd(&p),
        Ok(Command::Stream(st)) => return run_stream_cmd(&st),
        Ok(Command::Serve(sv)) => return run_serve_cmd(&sv),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if args.obs_report && std::env::var_os("MUERP_OBS").is_none() {
        // Reports want the span tree; respect an explicit MUERP_OBS.
        qnet_obs::set_level(qnet_obs::ObsLevel::Full);
    }
    println!(
        "MUERP reproduction — {} trial(s) per cell, base seed {}\n",
        args.cfg.trials, args.cfg.base_seed
    );
    for id in &args.which {
        let started = std::time::Instant::now();
        if args.obs_report {
            // Per-suite deltas: zero everything before each suite runs.
            qnet_obs::global().reset();
            qnet_obs::reset_spans();
            qnet_obs::reset_trace();
        }
        for table in run_one(id, args.cfg) {
            println!("{}", table.render_text());
            if let Some(dir) = &args.out {
                let path = dir.join(format!("{}.csv", table.id));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
        }
        if args.obs_report {
            let report = qnet_obs::RunReport::capture(id);
            warn_on_trace_drops(&report, id);
            match qnet_obs::write_report(Path::new("results/obs"), &report) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write obs report for {id}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if qnet_obs::trace_enabled() {
                match qnet_obs::write_trace_jsonl(Path::new("results/obs"), id) {
                    Ok(path) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write trace for {id}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        println!("({id} took {:.1?})\n", started.elapsed());
    }
    ExitCode::SUCCESS
}
