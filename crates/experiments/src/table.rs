//! Result tables: the textual equivalent of the paper's figure panels.

use std::fmt::Write as _;

/// One figure's results: rows are x-axis values, columns are algorithms.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureTable {
    /// Short id (`"fig5"`, `"fig6a"`, …) used for file names.
    pub id: &'static str,
    /// Human title, e.g. `"Entanglement rate vs. network topology"`.
    pub title: String,
    /// X-axis label.
    pub x_label: &'static str,
    /// Column (algorithm) names.
    pub algos: Vec<&'static str>,
    /// `(x value, per-algorithm mean rate)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Renders an aligned text table (rates in scientific notation, `0`
    /// for infeasible cells).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let x_width = self
            .rows
            .iter()
            .map(|(x, _)| x.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col = 12usize;
        let _ = write!(out, "{:<x_width$}", self.x_label);
        for a in &self.algos {
            let _ = write!(out, "  {a:>col$}");
        }
        out.push('\n');
        for (x, rates) in &self.rows {
            let _ = write!(out, "{x:<x_width$}");
            for r in rates {
                if *r == 0.0 {
                    let _ = write!(out, "  {:>col$}", "0");
                } else {
                    let _ = write!(out, "  {:>col$.3e}", r);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV (header row, then one row per x value).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for a in &self.algos {
            let _ = write!(out, ",{a}");
        }
        out.push('\n');
        for (x, rates) in &self.rows {
            let _ = write!(out, "{x}");
            for r in rates {
                let _ = write!(out, ",{r:e}");
            }
            out.push('\n');
        }
        out
    }

    /// Returns the mean rate for `(x value, algorithm name)`, if present.
    pub fn cell(&self, x: &str, algo: &str) -> Option<f64> {
        let col = self.algos.iter().position(|a| *a == algo)?;
        let (_, rates) = self.rows.iter().find(|(label, _)| label == x)?;
        rates.get(col).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        FigureTable {
            id: "figX",
            title: "test".into(),
            x_label: "x",
            algos: vec!["A", "B"],
            rows: vec![("1".into(), vec![0.5, 0.0]), ("2".into(), vec![1e-4, 2e-3])],
        }
    }

    #[test]
    fn text_render_contains_all_cells() {
        let t = sample().render_text();
        assert!(t.contains("figX"));
        assert!(t.contains("5.000e-1"));
        assert!(t.contains('0'));
        assert!(t.contains("2.000e-3"));
    }

    #[test]
    fn csv_roundtrips_row_count() {
        let csv = sample().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "x,A,B");
        assert!(lines[1].starts_with("1,"));
    }

    #[test]
    fn cell_lookup() {
        let t = sample();
        assert_eq!(t.cell("1", "A"), Some(0.5));
        assert_eq!(t.cell("2", "B"), Some(2e-3));
        assert_eq!(t.cell("3", "A"), None);
        assert_eq!(t.cell("1", "Z"), None);
    }
}
