//! Werner-state fidelity tracking through swap chains.
//!
//! Complements the rate simulation: given per-link Werner fidelity `F`,
//! the fidelity after a chain of BSM swaps is computed both iteratively
//! (the way the engine merges pairs) and in closed form via the
//! depolarizing parameter `w = (4F − 1)/3`, which simply *multiplies*
//! under swapping — the identity `muerp-core`'s fidelity-aware extension
//! relies on.

use serde::{Deserialize, Serialize};

/// Fidelity of the pair obtained by swapping two Werner pairs.
pub fn swap_fidelity(f1: f64, f2: f64) -> f64 {
    f1 * f2 + (1.0 - f1) * (1.0 - f2) / 3.0
}

/// Werner fidelity → depolarizing parameter `w = (4F − 1)/3`.
pub fn to_w(f: f64) -> f64 {
    (4.0 * f - 1.0) / 3.0
}

/// Depolarizing parameter → Werner fidelity `F = (1 + 3w)/4`.
pub fn from_w(w: f64) -> f64 {
    (1.0 + 3.0 * w) / 4.0
}

/// Closed-form end-to-end fidelity of a channel of `links` uniform
/// Werner links: `F_out = (1 + 3·w^links)/4`.
///
/// # Panics
///
/// Panics when `links == 0`.
pub fn chain_fidelity(link_fidelity: f64, links: usize) -> f64 {
    assert!(links > 0, "a channel has at least one link");
    from_w(to_w(link_fidelity).powi(links as i32))
}

/// A per-link fidelity annotation for fidelity-tracked simulations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FidelityParams {
    /// Fidelity of every fresh link-level Werner pair.
    pub link_fidelity: f64,
}

impl FidelityParams {
    /// End-to-end fidelity of each channel of the given link counts, and
    /// the minimum across channels (the weakest edge of the tree).
    pub fn tree_fidelities(&self, link_counts: &[usize]) -> (Vec<f64>, f64) {
        let per: Vec<f64> = link_counts
            .iter()
            .map(|&l| chain_fidelity(self.link_fidelity, l))
            .collect();
        let min = per.iter().copied().fold(1.0, f64::min);
        (per, min)
    }
}

/// Outcome of one BBPSSW purification round on two equal-fidelity
/// Werner pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PurificationStep {
    /// Fidelity of the surviving pair given success.
    pub fidelity: f64,
    /// Probability the round succeeds (both pairs are consumed either
    /// way; on failure nothing survives).
    pub success_prob: f64,
}

/// One round of BBPSSW entanglement purification on two Werner pairs of
/// fidelity `f` (Bennett et al. 1996) — the mechanism behind the
/// fidelity-aware routing literature the paper cites (\[18\], \[19\]).
///
/// For `f > 1/2` the surviving pair is strictly better; `f = 1/2` is the
/// fixed point; below it purification degrades.
///
/// # Panics
///
/// Panics when `f ∉ [0, 1]`.
pub fn purify(f: f64) -> PurificationStep {
    assert!(
        (0.0..=1.0).contains(&f),
        "fidelity must be in [0, 1], got {f}"
    );
    let bad = (1.0 - f) / 3.0;
    let success_prob = (f + bad) * (f + bad) + (2.0 * bad) * (2.0 * bad);
    let fidelity = (f * f + bad * bad) / success_prob;
    PurificationStep {
        fidelity,
        success_prob,
    }
}

/// Number of BBPSSW rounds (each consuming the output of the previous
/// round, i.e. `2^rounds` raw pairs) needed to lift fidelity `f_in` to at
/// least `f_target`, or `None` when unreachable (`f_in ≤ 1/2` or
/// `f_target` above the purification limit within 64 rounds).
pub fn rounds_to_reach(f_in: f64, f_target: f64) -> Option<u32> {
    if f_in >= f_target {
        return Some(0);
    }
    if f_in <= 0.5 {
        return None;
    }
    let mut f = f_in;
    for round in 1..=64u32 {
        f = purify(f).fidelity;
        if f >= f_target {
            return Some(round);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purification_improves_above_half() {
        for &f in &[0.6, 0.75, 0.9, 0.99] {
            let step = purify(f);
            assert!(step.fidelity > f, "purify({f}) = {:?}", step.fidelity);
            assert!((0.0..=1.0).contains(&step.success_prob));
        }
    }

    #[test]
    fn half_is_a_fixed_point_and_below_degrades() {
        let at_half = purify(0.5);
        assert!((at_half.fidelity - 0.5).abs() < 1e-12);
        let below = purify(0.4);
        assert!(below.fidelity < 0.4);
    }

    #[test]
    fn perfect_pairs_stay_perfect() {
        let step = purify(1.0);
        assert!((step.fidelity - 1.0).abs() < 1e-12);
        assert!((step.success_prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rounds_to_reach_behaviour() {
        assert_eq!(rounds_to_reach(0.95, 0.9), Some(0));
        let r = rounds_to_reach(0.7, 0.9).expect("reachable");
        assert!(r >= 1);
        // Verify by replay.
        let mut f = 0.7;
        for _ in 0..r {
            f = purify(f).fidelity;
        }
        assert!(f >= 0.9);
        assert_eq!(rounds_to_reach(0.5, 0.9), None);
        assert_eq!(rounds_to_reach(0.45, 0.6), None);
    }

    #[test]
    fn purification_recovers_swap_losses() {
        // A 4-link channel at link fidelity 0.95 drops below 0.85; two
        // purification rounds lift it back above.
        let delivered = chain_fidelity(0.95, 4);
        assert!(delivered < 0.85);
        let rounds = rounds_to_reach(delivered, 0.9).expect("recoverable");
        assert!(rounds <= 3, "needed {rounds} rounds");
    }

    #[test]
    fn w_roundtrip() {
        for &f in &[1.0, 0.9, 0.5, 0.25] {
            assert!((from_w(to_w(f)) - f).abs() < 1e-12);
        }
    }

    #[test]
    fn closed_form_matches_iterative_fold() {
        let link = 0.95;
        for links in 1..12 {
            let mut f = link;
            for _ in 1..links {
                f = swap_fidelity(f, link);
            }
            let closed = chain_fidelity(link, links);
            assert!(
                (f - closed).abs() < 1e-12,
                "links {links}: fold {f} vs closed {closed}"
            );
        }
    }

    #[test]
    fn swap_order_does_not_matter() {
        // Associativity through the w-domain: ((a∘b)∘c) == (a∘(b∘c)).
        let (a, b, c) = (0.97, 0.91, 0.88);
        let left = swap_fidelity(swap_fidelity(a, b), c);
        let right = swap_fidelity(a, swap_fidelity(b, c));
        assert!((left - right).abs() < 1e-12);
    }

    #[test]
    fn fidelity_decays_towards_one_quarter() {
        let f = chain_fidelity(0.9, 50);
        assert!(f > 0.25 && f < 0.3, "long chains decohere toward 1/4: {f}");
    }

    #[test]
    fn perfect_links_never_decay() {
        assert_eq!(chain_fidelity(1.0, 10), 1.0);
    }

    #[test]
    fn tree_fidelities_track_the_weakest_channel() {
        let p = FidelityParams {
            link_fidelity: 0.95,
        };
        let (per, min) = p.tree_fidelities(&[1, 3, 5]);
        assert_eq!(per.len(), 3);
        assert!((min - per[2]).abs() < 1e-12, "longest channel is weakest");
        assert!(per[0] > per[1] && per[1] > per[2]);
    }
}
