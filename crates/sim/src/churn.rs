//! Mid-protocol failure replay: a scheduled fault stream interrupts a
//! running [`Simulator`], a repair callback swaps the routing plan, and
//! the flight recorder gets `Failure`/`Repair` trace events.
//!
//! The simulator works in raw index space and knows nothing about the
//! routing layer: faults are plain node/edge-endpoint indices, and
//! repair is delegated to a caller-provided callback (the experiments
//! crate wires it to `muerp_core::survive::repair`). A fault that does
//! not touch the running plan is recorded but triggers no repair; a
//! fault the callback cannot repair marks the plan broken, and every
//! later slot counts as a failed trial until a subsequent fault's
//! repair succeeds (the callback sees every plan-touching fault, even
//! while broken).

use qnet_obs::TraceEvent;

use crate::engine::Simulator;
use crate::plan::RoutingPlan;

/// One scheduled fault, in the simulator's raw index space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureEvent {
    /// The fiber between nodes `a` and `b` is cut.
    LinkDown {
        /// Protocol slot at which the fault fires.
        at_slot: u64,
        /// One endpoint (raw node index).
        a: usize,
        /// The other endpoint (raw node index).
        b: usize,
    },
    /// Node `node` dies; channels through it (interior or endpoint)
    /// break.
    NodeDown {
        /// Protocol slot at which the fault fires.
        at_slot: u64,
        /// The dead node (raw node index).
        node: usize,
    },
    /// Node `node` loses `qubits` qubits of memory. Running channels
    /// keep their reservations (the qubits lost are free ones), so the
    /// plan itself never breaks — but the callback may still rebuild
    /// it if the routing layer decides channels must be torn down.
    Degrade {
        /// Protocol slot at which the fault fires.
        at_slot: u64,
        /// The degraded node (raw node index).
        node: usize,
        /// Qubits lost.
        qubits: u32,
    },
}

impl FailureEvent {
    /// The slot at which this fault fires.
    pub fn at_slot(&self) -> u64 {
        match *self {
            FailureEvent::LinkDown { at_slot, .. }
            | FailureEvent::NodeDown { at_slot, .. }
            | FailureEvent::Degrade { at_slot, .. } => at_slot,
        }
    }

    /// Kebab-case tag matching `muerp_core::survive::FailureKind`.
    pub fn name(&self) -> &'static str {
        match self {
            FailureEvent::LinkDown { .. } => "link-cut",
            FailureEvent::NodeDown { .. } => "switch-death",
            FailureEvent::Degrade { .. } => "capacity-loss",
        }
    }

    /// `true` when this fault structurally breaks a channel of `plan`.
    pub fn breaks_plan(&self, plan: &RoutingPlan) -> bool {
        match *self {
            FailureEvent::LinkDown { a, b, .. } => plan.channels.iter().any(|c| {
                c.nodes
                    .windows(2)
                    .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
            }),
            FailureEvent::NodeDown { node, .. } => {
                plan.channels.iter().any(|c| c.nodes.contains(&node))
            }
            FailureEvent::Degrade { .. } => false,
        }
    }
}

/// A replacement plan from the repair callback, with the metadata the
/// flight recorder's `Repair` event wants.
#[derive(Clone, Debug)]
pub struct PlanFix {
    /// The repaired routing plan.
    pub plan: RoutingPlan,
    /// Repair-ladder rung tag (`"local-reroute"`, `"reattach"`,
    /// `"full-resolve"`, `"untouched"`).
    pub method: &'static str,
    /// Channel-finder searches the repair spent.
    pub finder_runs: u64,
    /// Analytic entanglement rate of the repaired plan.
    pub rate: f64,
}

/// Aggregate result of a churn replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Slots in which all users ended up entangled.
    pub successes: u64,
    /// Total slots simulated (including broken-plan slots).
    pub trials: u64,
    /// Faults injected.
    pub failures_injected: usize,
    /// Faults that touched the running plan and were repaired.
    pub repairs: usize,
    /// Slots skipped because the plan was broken and unrepaired.
    pub unrepaired_slots: u64,
}

impl ChurnStats {
    /// Fraction of slots that delivered entanglement (availability).
    pub fn availability(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

impl Simulator {
    /// Runs `slots` protocol slots while replaying `events` (sorted by
    /// [`FailureEvent::at_slot`]; ties fire in order). Before each
    /// slot, every fault scheduled at or before it is injected:
    ///
    /// * a `Failure` trace event is recorded (at `Trace` level);
    /// * if the fault touches the running plan — or the plan is already
    ///   broken — `repair` is invoked with the fault and the current
    ///   plan; `Some(PlanFix)` swaps the plan in and records a `Repair`
    ///   trace event, `None` records an `"unrepairable"` `Repair` and
    ///   marks the plan broken.
    ///
    /// Broken-plan slots consume no randomness and count as failed
    /// trials, so a replay is bitwise deterministic for a fixed seed
    /// even across repairs.
    ///
    /// # Panics
    ///
    /// Panics if `events` is not sorted by slot.
    pub fn run_churn(
        &mut self,
        slots: u64,
        events: &[FailureEvent],
        mut repair: impl FnMut(&FailureEvent, &RoutingPlan) -> Option<PlanFix>,
    ) -> ChurnStats {
        assert!(
            events.windows(2).all(|w| w[0].at_slot() <= w[1].at_slot()),
            "failure events must be sorted by at_slot"
        );
        let _span = qnet_obs::span!("sim.churn.run");
        let mut stats = ChurnStats::default();
        let mut next_event = 0usize;
        let mut plan_broken = false;
        for slot in 0..slots {
            while let Some(event) = events.get(next_event) {
                if event.at_slot() > slot {
                    break;
                }
                next_event += 1;
                stats.failures_injected += 1;
                qnet_obs::counter!("sim.churn.failures");
                if qnet_obs::trace_enabled() {
                    let (subject, detail) = match *event {
                        FailureEvent::LinkDown { a, b, .. } => (a as u32, b as u32),
                        FailureEvent::NodeDown { node, .. } => (node as u32, 0),
                        FailureEvent::Degrade { node, qubits, .. } => (node as u32, qubits),
                    };
                    qnet_obs::record_event(TraceEvent::Failure {
                        kind: event.name(),
                        subject,
                        detail,
                        at_slot: event.at_slot(),
                    });
                }
                if !plan_broken && !event.breaks_plan(self.plan()) {
                    continue;
                }
                let broken_count = self
                    .plan()
                    .channels
                    .iter()
                    .filter(|c| {
                        c.nodes.windows(2).any(|w| {
                            matches!(*event, FailureEvent::LinkDown { a, b, .. }
                                if (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
                        }) || matches!(*event, FailureEvent::NodeDown { node, .. }
                            if c.nodes.contains(&node))
                    })
                    .count() as u32;
                match repair(event, self.plan()) {
                    Some(fix) => {
                        qnet_obs::counter!("sim.churn.repairs");
                        if qnet_obs::trace_enabled() {
                            qnet_obs::record_event(TraceEvent::Repair {
                                method: fix.method,
                                broken: broken_count,
                                finder_runs: fix.finder_runs,
                                rate: fix.rate,
                            });
                        }
                        self.set_plan(fix.plan);
                        plan_broken = false;
                        stats.repairs += 1;
                    }
                    None => {
                        qnet_obs::counter!("sim.churn.unrepaired");
                        if qnet_obs::trace_enabled() {
                            qnet_obs::record_event(TraceEvent::Repair {
                                method: "unrepairable",
                                broken: broken_count,
                                finder_runs: 0,
                                rate: 0.0,
                            });
                        }
                        plan_broken = true;
                    }
                }
            }
            stats.trials += 1;
            if plan_broken {
                stats.unrepaired_slots += 1;
                continue;
            }
            if self.run_slot() {
                stats.successes += 1;
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimPhysics;
    use crate::plan::ChannelSpec;

    fn physics() -> SimPhysics {
        SimPhysics {
            swap_success: 0.9,
            attenuation: 1e-4,
            fusion_success: None,
        }
    }

    /// Two channels: 0–1 via switch 3, and 1–2 direct.
    fn plan() -> RoutingPlan {
        RoutingPlan::tree(vec![
            ChannelSpec::new(vec![0, 3, 1], vec![500.0, 500.0], &[false, true, false]),
            ChannelSpec::new(vec![1, 2], vec![800.0], &[false, false]),
        ])
    }

    /// The same tree after repairing a cut of the 0–3 fiber: 0–1 now
    /// relayed by switch 4.
    fn repaired_plan() -> RoutingPlan {
        RoutingPlan::tree(vec![
            ChannelSpec::new(vec![0, 4, 1], vec![900.0, 900.0], &[false, true, false]),
            ChannelSpec::new(vec![1, 2], vec![800.0], &[false, false]),
        ])
    }

    #[test]
    fn unrelated_failure_matches_plain_run_exactly() {
        let slots = 200;
        let mut plain = Simulator::new(plan(), physics(), 7);
        let mut expected = 0u64;
        for _ in 0..slots {
            if plain.run_slot() {
                expected += 1;
            }
        }
        let mut churn = Simulator::new(plan(), physics(), 7);
        // Node 9 and fiber 7–8 are not part of the plan.
        let events = [
            FailureEvent::NodeDown {
                at_slot: 3,
                node: 9,
            },
            FailureEvent::LinkDown {
                at_slot: 10,
                a: 7,
                b: 8,
            },
        ];
        let stats = churn.run_churn(slots, &events, |_, _| {
            panic!("repair must not be invoked for untouched plans")
        });
        assert_eq!(stats.successes, expected, "same seed, same RNG stream");
        assert_eq!(stats.trials, slots);
        assert_eq!(stats.failures_injected, 2);
        assert_eq!(stats.repairs, 0);
        assert_eq!(stats.unrepaired_slots, 0);
    }

    #[test]
    fn repair_swaps_the_plan_and_simulation_continues() {
        let mut sim = Simulator::new(plan(), physics(), 21);
        let events = [FailureEvent::LinkDown {
            at_slot: 50,
            a: 0,
            b: 3,
        }];
        let mut seen: Option<&'static str> = None;
        let stats = sim.run_churn(400, &events, |event, current| {
            assert_eq!(event.name(), "link-cut");
            assert_eq!(current.channels.len(), 2);
            seen = Some(event.name());
            Some(PlanFix {
                plan: repaired_plan(),
                method: "local-reroute",
                finder_runs: 1,
                rate: 0.5,
            })
        });
        assert_eq!(seen, Some("link-cut"));
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.unrepaired_slots, 0);
        assert_eq!(stats.trials, 400);
        assert!(stats.successes > 0, "repaired plan keeps delivering");
        assert_eq!(sim.plan().channels[0].nodes, vec![0, 4, 1]);
    }

    #[test]
    fn unrepaired_plan_fails_remaining_slots() {
        let mut sim = Simulator::new(plan(), physics(), 5);
        let events = [FailureEvent::NodeDown {
            at_slot: 100,
            node: 3,
        }];
        let stats = sim.run_churn(300, &events, |_, _| None);
        assert_eq!(stats.repairs, 0);
        assert_eq!(stats.unrepaired_slots, 200, "slots 100.. are all dead");
        assert!(stats.availability() < 1.0);
        // Degrade events never break the plan on their own.
        let mut sim = Simulator::new(plan(), physics(), 5);
        let events = [FailureEvent::Degrade {
            at_slot: 0,
            node: 3,
            qubits: 2,
        }];
        let stats = sim.run_churn(50, &events, |_, _| {
            panic!("degrade alone must not trigger repair")
        });
        assert_eq!(stats.failures_injected, 1);
        assert_eq!(stats.unrepaired_slots, 0);
    }

    #[test]
    fn churn_replay_is_deterministic() {
        let run = || {
            let mut sim = Simulator::new(plan(), physics(), 11);
            let events = [
                FailureEvent::LinkDown {
                    at_slot: 20,
                    a: 1,
                    b: 2,
                },
                FailureEvent::NodeDown {
                    at_slot: 60,
                    node: 4,
                },
            ];
            sim.run_churn(150, &events, |event, _| match event {
                FailureEvent::LinkDown { .. } => Some(PlanFix {
                    plan: repaired_plan(),
                    method: "full-resolve",
                    finder_runs: 3,
                    rate: 0.4,
                }),
                _ => None,
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn out_of_order_events_panic() {
        let mut sim = Simulator::new(plan(), physics(), 1);
        let events = [
            FailureEvent::NodeDown {
                at_slot: 9,
                node: 3,
            },
            FailureEvent::NodeDown {
                at_slot: 2,
                node: 4,
            },
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_churn(10, &events, |_, _| None)
        }));
        assert!(result.is_err());
    }
}
