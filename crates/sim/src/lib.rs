//! # qnet-sim — time-slotted Monte-Carlo quantum-network simulator
//!
//! The MUERP paper evaluates routing *analytically*: a channel of `l`
//! links succeeds with probability `q^(l−1)·exp(−α·ΣL)` (Eq. 1) and a
//! tree succeeds when all channels do (Eq. 2). This crate implements the
//! physical layer those formulas abstract — heralded link-level Bell-pair
//! generation, BSM entanglement swapping at switches, n-fusion GHZ
//! measurements — and *simulates the protocol mechanically*, so the
//! analytic rates can be validated instead of assumed:
//!
//! 1. each time slot, every quantum link of the plan attempts heralded
//!    entanglement (success `exp(−α·L)`), placing Bell pairs between
//!    neighboring nodes' qubits ([`link`]);
//! 2. each interior switch measures its two qubits per channel (BSM,
//!    success `q`), splicing the two Bell pairs into one and freeing its
//!    qubits ([`bsm`], [`entangle`]);
//! 3. for fusion plans, the center performs one n-qubit GHZ projective
//!    measurement ([`fusion`]);
//! 4. the slot *succeeds* when the entanglement registry — not a formula —
//!    shows all users in one entangled group ([`engine`]).
//!
//! [`metrics`] provides Wilson confidence intervals so tests can assert
//! `MC estimate ≈ Eq. 2` rigorously; [`fidelity`] threads Werner-state
//! fidelities through the same merge tree.
//!
//! # Example
//!
//! ```
//! use qnet_sim::plan::{ChannelSpec, RoutingPlan};
//! use qnet_sim::engine::{Simulator, SimPhysics};
//!
//! // One channel: user 0 — switch 1 — user 2, both fibers 1000 km.
//! let plan = RoutingPlan::tree(vec![ChannelSpec::new(
//!     vec![0, 1, 2],
//!     vec![1000.0, 1000.0],
//!     &[false, true, false], // switch flags per node
//! )]);
//! let physics = SimPhysics { swap_success: 0.9, attenuation: 1e-4, fusion_success: None };
//! let stats = Simulator::new(plan, physics, 42).run_slots(20_000);
//! let analytic = 0.9 * (-0.2f64).exp();
//! assert!(stats.estimate().wilson_interval(4.0).contains(analytic));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsm;
pub mod buffered;
pub mod churn;
pub mod engine;
pub mod entangle;
pub mod fidelity;
pub mod fusion;
pub mod link;
pub mod metrics;
pub mod plan;
pub mod qubit;
pub mod trace;

pub use churn::{ChurnStats, FailureEvent, PlanFix};
pub use engine::{SimPhysics, Simulator, SlotStats};
pub use metrics::RateEstimate;
pub use plan::{ChannelSpec, RoutingPlan};
