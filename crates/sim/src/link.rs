//! Link-level heralded entanglement generation.
//!
//! A quantum link over a fiber of length `L` succeeds with probability
//! `p = exp(−α·L)` per attempt (paper §II-A); successes are heralded, so
//! the protocol knows which links are up before swapping begins.

use rand::Rng;

/// The fiber loss model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Attenuation constant `α` per length unit.
    pub attenuation: f64,
}

impl LinkModel {
    /// Success probability of one attempt over a fiber of length
    /// `length`.
    ///
    /// # Panics
    ///
    /// Panics on negative length.
    pub fn success_prob(&self, length: f64) -> f64 {
        assert!(length >= 0.0, "fiber length must be non-negative");
        (-self.attenuation * length).exp()
    }

    /// Samples one heralded attempt.
    pub fn attempt<R: Rng>(&self, length: f64, rng: &mut R) -> bool {
        rng.random_bool(self.success_prob(length))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probability_decays_exponentially() {
        let m = LinkModel { attenuation: 1e-4 };
        assert_eq!(m.success_prob(0.0), 1.0);
        assert!((m.success_prob(10_000.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(m.success_prob(2000.0) < m.success_prob(1000.0));
    }

    #[test]
    fn sampling_matches_probability() {
        let m = LinkModel { attenuation: 1e-4 };
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 50_000;
        let hits = (0..trials).filter(|_| m.attempt(5000.0, &mut rng)).count() as f64;
        let p = m.success_prob(5000.0); // ≈ 0.6065
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();
        assert!(
            (hits / trials as f64 - p).abs() < 5.0 * sigma,
            "empirical {} vs analytic {p}",
            hits / trials as f64
        );
    }

    #[test]
    fn zero_attenuation_always_succeeds() {
        let m = LinkModel { attenuation: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| m.attempt(1e9, &mut rng)));
    }
}
