//! Bell-state-measurement (BSM) entanglement swapping.
//!
//! A quantum switch holding one qubit of each of two Bell pairs measures
//! the two local qubits jointly; on success (probability `q`, uniform
//! across switches per the paper's §II-A) the two remote qubits become
//! entangled and the local qubits are freed.

use rand::Rng;

/// The swapping success model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BsmModel {
    /// Success probability `q ∈ [0, 1]` of one BSM.
    pub swap_success: f64,
}

impl BsmModel {
    /// Creates the model, validating the probability range.
    ///
    /// # Panics
    ///
    /// Panics when `q ∉ [0, 1]`.
    pub fn new(swap_success: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&swap_success),
            "swap success must be a probability, got {swap_success}"
        );
        BsmModel { swap_success }
    }

    /// Samples one BSM attempt.
    pub fn attempt<R: Rng>(&self, rng: &mut R) -> bool {
        rng.random_bool(self.swap_success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampling_matches_q() {
        let m = BsmModel::new(0.9);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let hits = (0..trials).filter(|_| m.attempt(&mut rng)).count() as f64;
        let sigma = (0.9 * 0.1 / trials as f64).sqrt();
        assert!((hits / trials as f64 - 0.9).abs() < 5.0 * sigma);
    }

    #[test]
    fn extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..50).all(|_| BsmModel::new(1.0).attempt(&mut rng)));
        assert!((0..50).all(|_| !BsmModel::new(0.0).attempt(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rejected() {
        BsmModel::new(1.2);
    }
}
