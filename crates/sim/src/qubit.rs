//! Concrete qubit-slot assignment — the controller's final artifact.
//!
//! The paper's §II-B controller computes routes offline and distributes
//! them; a real switch must then know *which of its physical qubits*
//! serves which channel. [`assign`] maps a [`RoutingPlan`] onto
//! per-switch memory slots deterministically: every interior visit of a
//! channel gets a (left, right) slot pair at that switch, and a switch
//! fusion center pins one slot per incoming arm. The assignment is the
//! witness that the plan honors every capacity — producing it *is* the
//! capacity check.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::plan::{PlanKind, RoutingPlan};

/// One physical memory slot at a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    /// The node owning the memory.
    pub node: usize,
    /// Slot index within the node's memory (`0..capacity`).
    pub index: u32,
}

/// Where a slot is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotUse {
    /// Serving link `link` of channel `channel` on the side toward the
    /// channel head (`left = true`) or tail.
    Relay {
        /// Channel index in the plan.
        channel: usize,
        /// Interior position within the channel (1-based node position).
        position: usize,
        /// `true` for the qubit paired with the incoming (head-side)
        /// link.
        left: bool,
    },
    /// Pinned at a fusion center for arm `arm`.
    FusionHold {
        /// Arm (channel) index in the plan.
        arm: usize,
    },
}

/// A complete assignment: which slot serves which protocol role.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Slot → role, covering every qubit the plan consumes.
    pub uses: Vec<(Slot, SlotUse)>,
}

impl Assignment {
    /// Slots consumed at `node`.
    pub fn slots_at(&self, node: usize) -> Vec<Slot> {
        self.uses
            .iter()
            .filter(|(s, _)| s.node == node)
            .map(|(s, _)| *s)
            .collect()
    }

    /// Total consumed slots.
    pub fn len(&self) -> usize {
        self.uses.len()
    }

    /// `true` when nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.uses.is_empty()
    }
}

/// Why assignment failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapacityExceeded {
    /// The node that ran out of memory.
    pub node: usize,
    /// Slots demanded.
    pub demanded: u32,
    /// Slots available.
    pub available: u32,
}

impl core::fmt::Display for CapacityExceeded {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "node {} memory exceeded: {} slots demanded, {} available",
            self.node, self.demanded, self.available
        )
    }
}

impl std::error::Error for CapacityExceeded {}

/// Assigns concrete memory slots to every qubit the plan consumes.
///
/// `capacity[node]` gives a node's slot count; absent nodes are treated
/// as unconstrained users (slots still numbered from 0).
///
/// # Errors
///
/// Returns the first [`CapacityExceeded`] in node order.
pub fn assign(
    plan: &RoutingPlan,
    capacity: &HashMap<usize, u32>,
) -> Result<Assignment, CapacityExceeded> {
    let mut next_slot: HashMap<usize, u32> = HashMap::new();
    let mut out = Assignment::default();

    let mut take =
        |node: usize, usage: SlotUse, out: &mut Assignment| -> Result<(), CapacityExceeded> {
            let idx = next_slot.entry(node).or_insert(0);
            if let Some(&cap) = capacity.get(&node) {
                if *idx >= cap {
                    return Err(CapacityExceeded {
                        node,
                        demanded: *idx + 1,
                        available: cap,
                    });
                }
            }
            out.uses.push((Slot { node, index: *idx }, usage));
            *idx += 1;
            Ok(())
        };

    for (ci, channel) in plan.channels.iter().enumerate() {
        for (pos, &node) in channel.nodes.iter().enumerate() {
            let interior = pos > 0 && pos + 1 < channel.nodes.len();
            if interior {
                take(
                    node,
                    SlotUse::Relay {
                        channel: ci,
                        position: pos,
                        left: true,
                    },
                    &mut out,
                )?;
                take(
                    node,
                    SlotUse::Relay {
                        channel: ci,
                        position: pos,
                        left: false,
                    },
                    &mut out,
                )?;
            }
        }
    }
    if let PlanKind::FusionStar {
        center,
        center_is_switch: true,
    } = plan.kind
    {
        for arm in 0..plan.channels.len() {
            take(center, SlotUse::FusionHold { arm }, &mut out)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChannelSpec;

    fn caps(pairs: &[(usize, u32)]) -> HashMap<usize, u32> {
        pairs.iter().copied().collect()
    }

    fn two_channels_one_switch() -> RoutingPlan {
        RoutingPlan::tree(vec![
            ChannelSpec::new(vec![0, 1, 2], vec![1.0, 1.0], &[false, true, false]),
            ChannelSpec::new(vec![3, 1, 4], vec![1.0, 1.0], &[false, true, false]),
        ])
    }

    #[test]
    fn assigns_two_slots_per_interior_visit() {
        let plan = two_channels_one_switch();
        let a = assign(&plan, &caps(&[(1, 4)])).unwrap();
        assert_eq!(a.len(), 4, "two visits × two slots");
        let at_switch = a.slots_at(1);
        assert_eq!(at_switch.len(), 4);
        // Slots are distinct indices 0..4.
        let mut idx: Vec<u32> = at_switch.iter().map(|s| s.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_violation_is_reported_precisely() {
        let plan = two_channels_one_switch();
        let err = assign(&plan, &caps(&[(1, 2)])).unwrap_err();
        assert_eq!(
            err,
            CapacityExceeded {
                node: 1,
                demanded: 3,
                available: 2
            }
        );
        assert!(err.to_string().contains("node 1"));
    }

    #[test]
    fn assignment_agrees_with_plan_demand() {
        let plan = two_channels_one_switch();
        let a = assign(&plan, &caps(&[(1, 10)])).unwrap();
        for (node, demand) in plan.qubit_demand() {
            assert_eq!(a.slots_at(node).len() as u32, demand);
        }
    }

    #[test]
    fn fusion_center_slots_are_pinned() {
        let arms = vec![
            ChannelSpec::new(vec![0, 9], vec![1.0], &[false, true]),
            ChannelSpec::new(vec![2, 9], vec![1.0], &[false, true]),
        ];
        let plan = RoutingPlan::fusion_star(arms, 9, true);
        let a = assign(&plan, &caps(&[(9, 2)])).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a
            .uses
            .iter()
            .all(|(s, u)| s.node == 9 && matches!(u, SlotUse::FusionHold { .. })));
        // One slot short fails.
        assert!(assign(&plan, &caps(&[(9, 1)])).is_err());
    }

    #[test]
    fn users_are_unconstrained() {
        let plan = RoutingPlan::tree(vec![ChannelSpec::new(
            vec![0, 1, 2],
            vec![1.0, 1.0],
            &[false, true, false],
        )]);
        // No capacity entry for switch 1 either: fully unconstrained.
        let a = assign(&plan, &HashMap::new()).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.slots_at(0).is_empty(), "endpoints hold no relay slots");
    }

    #[test]
    fn deterministic_slot_numbering() {
        let plan = two_channels_one_switch();
        let a = assign(&plan, &caps(&[(1, 4)])).unwrap();
        let b = assign(&plan, &caps(&[(1, 4)])).unwrap();
        assert_eq!(a, b);
    }
}
