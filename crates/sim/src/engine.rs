//! The time-slotted simulation engine.
//!
//! Each slot executes the plan mechanically (paper §II-B: synchronized
//! clocks, pre-distributed routes):
//!
//! 1. every link of every channel attempts heralded Bell-pair generation;
//! 2. a channel whose links all succeeded performs BSMs at each interior
//!    switch, left to right;
//! 3. fusion plans then attempt the GHZ measurement at the center;
//! 4. the slot succeeds iff the entanglement registry certifies all user
//!    endpoints in one entangled group.
//!
//! Success is read off the [`crate::entangle::Registry`], so a bug in the
//! protocol mechanics (wrong qubit pairing, missing swap) would produce a
//! measurable rate deviation rather than silently reproducing Eq. 2.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bsm::BsmModel;
use crate::entangle::{QubitId, Registry};
use crate::fusion::FusionModel;
use crate::link::LinkModel;
use crate::metrics::RateEstimate;
use crate::plan::{PlanKind, RoutingPlan};

/// Physics parameters of a simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimPhysics {
    /// BSM success rate `q`.
    pub swap_success: f64,
    /// Fiber attenuation `α`.
    pub attenuation: f64,
    /// Optional fixed fusion success overriding the `q^(n−1)` power law.
    pub fusion_success: Option<f64>,
}

/// Aggregate slot statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Slots in which end-to-end entanglement was certified.
    pub successes: u64,
    /// Total slots simulated.
    pub trials: u64,
}

impl SlotStats {
    /// View as a [`RateEstimate`] for interval math.
    pub fn estimate(&self) -> RateEstimate {
        RateEstimate {
            successes: self.successes,
            trials: self.trials,
        }
    }
}

/// The Monte-Carlo simulator for one routing plan.
#[derive(Debug)]
pub struct Simulator {
    plan: RoutingPlan,
    link: LinkModel,
    bsm: BsmModel,
    fusion: FusionModel,
    rng: StdRng,
}

impl Simulator {
    /// Creates a simulator with a deterministic RNG seed.
    pub fn new(plan: RoutingPlan, physics: SimPhysics, seed: u64) -> Self {
        Simulator {
            plan,
            link: LinkModel {
                attenuation: physics.attenuation,
            },
            bsm: BsmModel::new(physics.swap_success),
            fusion: FusionModel {
                swap_success: physics.swap_success,
                fixed: physics.fusion_success,
            },
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The plan under simulation.
    pub fn plan(&self) -> &RoutingPlan {
        &self.plan
    }

    /// Replaces the routing plan mid-run (survivability repair): later
    /// slots execute the new plan. The RNG stream is untouched, so a
    /// replay with the same seed and the same swap sequence is
    /// deterministic.
    pub fn set_plan(&mut self, plan: RoutingPlan) {
        self.plan = plan;
    }

    /// Simulates one slot; `true` when all users ended up entangled.
    pub fn run_slot(&mut self) -> bool {
        self.run_slot_observed(&mut |_| {})
    }

    /// Simulates one slot, emitting a [`crate::trace::Event`] for every
    /// protocol step. The observer never perturbs the RNG stream, so
    /// traced and untraced runs produce identical statistics.
    pub fn run_slot_observed(&mut self, obs: &mut dyn FnMut(crate::trace::Event)) -> bool {
        let outcome = if qnet_obs::enabled(qnet_obs::ObsLevel::Counters) {
            let outcome = self.run_slot_inner(&mut |e| {
                crate::trace::obs_bridge(e);
                obs(e);
            });
            crate::trace::obs_bridge(crate::trace::Event::SlotOutcome { success: outcome });
            outcome
        } else {
            self.run_slot_inner(obs)
        };
        obs(crate::trace::Event::SlotOutcome { success: outcome });
        outcome
    }

    fn run_slot_inner(&mut self, obs: &mut dyn FnMut(crate::trace::Event)) -> bool {
        let mut registry = Registry::with_capacity(self.plan.max_qubits());

        // Per-channel terminal qubits (head, tail), None when the channel
        // failed this slot.
        let mut terminals: Vec<Option<(QubitId, QubitId)>> =
            Vec::with_capacity(self.plan.channels.len());

        for (idx, channel) in self.plan.channels.iter().enumerate() {
            terminals.push(simulate_channel(
                idx,
                channel,
                &self.link,
                &self.bsm,
                &mut registry,
                &mut self.rng,
                obs,
            ));
        }

        // Every channel must have succeeded.
        if terminals.iter().any(Option::is_none) {
            return false;
        }
        let terminals: Vec<(QubitId, QubitId)> = terminals.into_iter().flatten().collect();

        match self.plan.kind {
            PlanKind::Tree => {
                // Certify: the per-channel Bell pairs plus co-location at
                // shared users connect every user. Union over node ids.
                let users = self.plan.users();
                let max_node = self
                    .plan
                    .channels
                    .iter()
                    .flat_map(|c| c.nodes.iter().copied())
                    .max()
                    .unwrap_or(0);
                let mut uf = qnet_graph::UnionFind::new(max_node + 1);
                for ((hq, tq), channel) in terminals.iter().zip(&self.plan.channels) {
                    if !registry.entangled_together(*hq, *tq) {
                        return false; // protocol bug guard
                    }
                    uf.union(channel.head(), channel.tail());
                }
                uf.all_same_set(users.iter().copied())
            }
            PlanKind::FusionStar {
                center,
                center_is_switch,
            } => {
                // Collect the center-side qubits of each arm.
                let mut center_qubits: Vec<QubitId> = Vec::with_capacity(terminals.len() + 1);
                let mut user_qubits: Vec<QubitId> = Vec::with_capacity(terminals.len() + 1);
                for ((hq, tq), channel) in terminals.iter().zip(&self.plan.channels) {
                    let (cq, uq) = if channel.tail() == center {
                        (*tq, *hq)
                    } else {
                        (*hq, *tq)
                    };
                    center_qubits.push(cq);
                    user_qubits.push(uq);
                }
                if !center_is_switch {
                    // A user center contributes a local qubit to the GHZ:
                    // model it as a perfect local Bell pair between two
                    // fresh qubits at the center, one fused, one kept.
                    let kept = registry.alloc(center);
                    let fused = registry.alloc(center);
                    registry.bell_pair(kept, fused);
                    center_qubits.push(fused);
                    user_qubits.push(kept);
                }
                let arity = center_qubits.len();
                let fused = self.fusion.attempt(arity, &mut self.rng);
                obs(crate::trace::Event::Fusion {
                    center,
                    arity,
                    success: fused,
                });
                if !fused {
                    return false;
                }
                registry.fuse(&center_qubits);
                registry.all_entangled_together(&user_qubits)
            }
        }
    }

    /// Simulates `n` slots and aggregates the statistics.
    pub fn run_slots(&mut self, n: u64) -> SlotStats {
        let _span = qnet_obs::span!("sim.engine.run_slots");
        let timed = qnet_obs::enabled(qnet_obs::ObsLevel::Counters);
        let mut stats = SlotStats::default();
        for _ in 0..n {
            let t0 = timed.then(std::time::Instant::now);
            stats.trials += 1;
            if self.run_slot() {
                stats.successes += 1;
            }
            if let Some(t0) = t0 {
                qnet_obs::histogram!("sim.slot.duration_us", t0.elapsed().as_micros() as u64);
            }
        }
        stats
    }

    /// The analytic rate (Eq. 1/2 with the fusion factor for stars) this
    /// simulation should converge to.
    pub fn analytic_rate(&self) -> f64 {
        self.plan.analytic_rate(
            self.bsm.swap_success,
            self.link.attenuation,
            self.fusion.fixed,
        )
    }
}

/// Simulates one channel: heralded links, then BSMs left to right.
/// Returns the surviving terminal qubits on success.
fn simulate_channel(
    channel_idx: usize,
    channel: &crate::plan::ChannelSpec,
    link: &LinkModel,
    bsm: &BsmModel,
    registry: &mut Registry,
    rng: &mut StdRng,
    obs: &mut dyn FnMut(crate::trace::Event),
) -> Option<(QubitId, QubitId)> {
    // Heralded link attempts: all must succeed before swapping starts.
    for (i, &length) in channel.lengths.iter().enumerate() {
        let success = link.attempt(length, rng);
        obs(crate::trace::Event::LinkAttempt {
            channel: channel_idx,
            link: i,
            success,
        });
        if !success {
            return None;
        }
    }

    // Allocate qubits and lay down the Bell pairs. Node i holds the
    // "right" qubit of link i−1 and the "left" qubit of link i.
    let l = channel.links();
    let mut right_of_link: Vec<QubitId> = Vec::with_capacity(l);
    let mut left_of_link: Vec<QubitId> = Vec::with_capacity(l);
    for i in 0..l {
        left_of_link.push(registry.alloc(channel.nodes[i]));
        right_of_link.push(registry.alloc(channel.nodes[i + 1]));
    }
    for i in 0..l {
        registry.bell_pair(left_of_link[i], right_of_link[i]);
    }

    // BSM at each interior node: measures (incoming right, outgoing left).
    for i in 1..l {
        let success = bsm.attempt(rng);
        obs(crate::trace::Event::Swap {
            channel: channel_idx,
            switch: channel.nodes[i],
            success,
        });
        if !success {
            return None;
        }
        registry.swap(right_of_link[i - 1], left_of_link[i]);
    }

    let head_q = left_of_link[0];
    let tail_q = right_of_link[l - 1];
    debug_assert!(registry.entangled_together(head_q, tail_q));
    Some((head_q, tail_q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChannelSpec;

    fn physics(q: f64) -> SimPhysics {
        SimPhysics {
            swap_success: q,
            attenuation: 1e-4,
            fusion_success: None,
        }
    }

    fn two_hop_channel() -> ChannelSpec {
        ChannelSpec::new(vec![0, 1, 2], vec![1000.0, 1000.0], &[false, true, false])
    }

    #[test]
    fn single_channel_converges_to_eq1() {
        let plan = RoutingPlan::tree(vec![two_hop_channel()]);
        let mut sim = Simulator::new(plan, physics(0.9), 7);
        let analytic = sim.analytic_rate();
        assert!((analytic - 0.9 * (-0.2f64).exp()).abs() < 1e-12);
        let stats = sim.run_slots(40_000);
        assert!(
            stats.estimate().wilson_interval(4.0).contains(analytic),
            "MC {} vs analytic {analytic}",
            stats.estimate().point()
        );
    }

    #[test]
    fn tree_converges_to_eq2() {
        // Star tree: u0–s1–u2 and u0–s1–u3 (switch 1 relays twice).
        let plan = RoutingPlan::tree(vec![
            two_hop_channel(),
            ChannelSpec::new(vec![0, 1, 3], vec![1000.0, 2000.0], &[false, true, false]),
        ]);
        let mut sim = Simulator::new(plan, physics(0.9), 8);
        let analytic = sim.analytic_rate();
        let stats = sim.run_slots(60_000);
        assert!(
            stats.estimate().wilson_interval(4.0).contains(analytic),
            "MC {} vs analytic {analytic}",
            stats.estimate().point()
        );
    }

    #[test]
    fn perfect_physics_always_succeeds() {
        let plan = RoutingPlan::tree(vec![ChannelSpec::new(
            vec![0, 1, 2],
            vec![0.0, 0.0],
            &[false, true, false],
        )]);
        let mut sim = Simulator::new(
            plan,
            SimPhysics {
                swap_success: 1.0,
                attenuation: 0.0,
                fusion_success: None,
            },
            9,
        );
        let stats = sim.run_slots(500);
        assert_eq!(stats.successes, 500);
    }

    #[test]
    fn zero_swap_rate_never_spans_multi_hop() {
        let plan = RoutingPlan::tree(vec![two_hop_channel()]);
        let mut sim = Simulator::new(plan, physics(0.0), 10);
        let stats = sim.run_slots(500);
        assert_eq!(stats.successes, 0);
    }

    #[test]
    fn fusion_star_converges_to_analytic() {
        let arms = vec![
            ChannelSpec::new(vec![0, 9], vec![800.0], &[false, true]),
            ChannelSpec::new(vec![2, 9], vec![800.0], &[false, true]),
            ChannelSpec::new(vec![3, 9], vec![800.0], &[false, true]),
        ];
        let plan = RoutingPlan::fusion_star(arms, 9, true);
        let mut sim = Simulator::new(plan, physics(0.9), 11);
        let analytic = sim.analytic_rate();
        // p³·q² with p = e^{-0.08}.
        assert!((analytic - (-0.24f64).exp() * 0.81).abs() < 1e-12);
        let stats = sim.run_slots(60_000);
        assert!(
            stats.estimate().wilson_interval(4.0).contains(analytic),
            "MC {} vs analytic {analytic}",
            stats.estimate().point()
        );
    }

    #[test]
    fn user_centered_fusion_has_higher_arity() {
        let arms = vec![
            ChannelSpec::new(vec![0, 9], vec![0.0], &[false, false]),
            ChannelSpec::new(vec![2, 9], vec![0.0], &[false, false]),
        ];
        let plan = RoutingPlan::fusion_star(arms, 9, false);
        let mut sim = Simulator::new(
            plan,
            SimPhysics {
                swap_success: 0.9,
                attenuation: 0.0,
                fusion_success: None,
            },
            12,
        );
        // Arity 3 (two arms + local) → q² on perfect links.
        let analytic = sim.analytic_rate();
        assert!((analytic - 0.81).abs() < 1e-12);
        let stats = sim.run_slots(40_000);
        assert!(stats.estimate().wilson_interval(4.0).contains(analytic));
    }

    #[test]
    fn longer_channels_are_strictly_worse() {
        let short = RoutingPlan::tree(vec![two_hop_channel()]);
        let long = RoutingPlan::tree(vec![ChannelSpec::new(
            vec![0, 1, 2, 3],
            vec![1000.0, 1000.0, 1000.0],
            &[false, true, true, false],
        )]);
        let s_short = Simulator::new(short, physics(0.9), 13).run_slots(30_000);
        let s_long = Simulator::new(long, physics(0.9), 14).run_slots(30_000);
        assert!(s_long.successes < s_short.successes);
    }

    #[test]
    fn deterministic_under_seed() {
        let plan = RoutingPlan::tree(vec![two_hop_channel()]);
        let a = Simulator::new(plan.clone(), physics(0.9), 15).run_slots(2_000);
        let b = Simulator::new(plan, physics(0.9), 15).run_slots(2_000);
        assert_eq!(a, b);
    }
}
