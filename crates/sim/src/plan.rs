//! Routing plans: the structures the central controller distributes
//! (paper §II-B) and the simulator executes.
//!
//! Plans are expressed in plain node indices and fiber lengths so the
//! simulator stays decoupled from any particular graph representation;
//! `muerp-core` solutions convert trivially (see the integration tests).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// One quantum channel (or fusion-star arm): a node path with per-link
/// fiber lengths and a switch flag per node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Node indices along the path.
    pub nodes: Vec<usize>,
    /// Fiber length of each link (`lengths.len() == nodes.len() − 1`).
    pub lengths: Vec<f64>,
    /// Whether each node along the path is a switch (`true`) or a user
    /// endpoint (`false`).
    pub is_switch: Vec<bool>,
}

impl ChannelSpec {
    /// Creates a channel spec.
    ///
    /// # Panics
    ///
    /// Panics when the three slices disagree in length, the path has
    /// fewer than 2 nodes, or an interior node is not flagged as a
    /// switch.
    pub fn new(nodes: Vec<usize>, lengths: Vec<f64>, is_switch: &[bool]) -> Self {
        assert!(nodes.len() >= 2, "a channel spans at least 2 nodes");
        assert_eq!(lengths.len(), nodes.len() - 1, "one length per link");
        assert_eq!(is_switch.len(), nodes.len(), "one switch flag per node");
        for (i, &flag) in is_switch.iter().enumerate().take(nodes.len() - 1).skip(1) {
            assert!(flag, "interior node position {i} must be a switch");
        }
        ChannelSpec {
            nodes,
            lengths,
            is_switch: is_switch.to_vec(),
        }
    }

    /// Number of links `l`.
    pub fn links(&self) -> usize {
        self.lengths.len()
    }

    /// First node of the path.
    pub fn head(&self) -> usize {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn tail(&self) -> usize {
        *self.nodes.last().expect("non-empty path")
    }

    /// Interior node indices (positions `1..len−1`).
    pub fn interior(&self) -> &[usize] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// The analytic Eq. 1 rate of this channel:
    /// `q^(l−1) · Π exp(−α·Lᵢ)`.
    pub fn analytic_rate(&self, swap_success: f64, attenuation: f64) -> f64 {
        let links: f64 = self
            .lengths
            .iter()
            .map(|&l| (-attenuation * l).exp())
            .product();
        swap_success.powi(self.links() as i32 - 1) * links
    }
}

/// What the plan's structure is.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlanKind {
    /// An entanglement tree: channels connect user pairs; BSM only.
    Tree,
    /// A fusion star: all channels end at `center`, which performs one
    /// n-fusion over its held qubits.
    FusionStar {
        /// The center node index.
        center: usize,
        /// Whether the center is a switch (it then pins one memory qubit
        /// per incoming arm) or a user.
        center_is_switch: bool,
    },
}

/// A complete routing plan for one entanglement attempt per slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingPlan {
    /// The channels (tree edges or star arms).
    pub channels: Vec<ChannelSpec>,
    /// Structure of the plan.
    pub kind: PlanKind,
}

impl RoutingPlan {
    /// An entanglement-tree plan.
    pub fn tree(channels: Vec<ChannelSpec>) -> Self {
        RoutingPlan {
            channels,
            kind: PlanKind::Tree,
        }
    }

    /// A fusion-star plan centered at `center`.
    ///
    /// # Panics
    ///
    /// Panics when some channel does not end (or start) at the center.
    pub fn fusion_star(channels: Vec<ChannelSpec>, center: usize, center_is_switch: bool) -> Self {
        for c in &channels {
            assert!(
                c.head() == center || c.tail() == center,
                "fusion arm {:?} does not touch center {center}",
                c.nodes
            );
        }
        RoutingPlan {
            channels,
            kind: PlanKind::FusionStar {
                center,
                center_is_switch,
            },
        }
    }

    /// The user endpoints the plan entangles (deduplicated, sorted).
    pub fn users(&self) -> Vec<usize> {
        let mut users = Vec::new();
        for c in &self.channels {
            for (pos, &node) in c.nodes.iter().enumerate() {
                let is_end = pos == 0 || pos == c.nodes.len() - 1;
                if is_end && !c.is_switch[pos] {
                    users.push(node);
                }
            }
        }
        if let PlanKind::FusionStar {
            center,
            center_is_switch: false,
        } = self.kind
        {
            users.push(center);
        }
        users.sort_unstable();
        users.dedup();
        users
    }

    /// Number of qubits fused at the center of a star plan: one per arm,
    /// plus a local qubit when the center is itself a user.
    ///
    /// Returns `None` for tree plans.
    pub fn fusion_arity(&self) -> Option<usize> {
        match self.kind {
            PlanKind::Tree => None,
            PlanKind::FusionStar {
                center_is_switch, ..
            } => Some(self.channels.len() + usize::from(!center_is_switch)),
        }
    }

    /// Per-switch qubit demand: 2 per interior visit, plus 1 per arm at
    /// a switch fusion center.
    pub fn qubit_demand(&self) -> HashMap<usize, u32> {
        let mut demand: HashMap<usize, u32> = HashMap::new();
        for c in &self.channels {
            for &s in c.interior() {
                *demand.entry(s).or_insert(0) += 2;
            }
        }
        if let PlanKind::FusionStar {
            center,
            center_is_switch: true,
        } = self.kind
        {
            *demand.entry(center).or_insert(0) += self.channels.len() as u32;
        }
        demand
    }

    /// `true` when the demand fits the given per-node capacities (nodes
    /// absent from `capacity` are treated as unconstrained users).
    pub fn fits_capacity(&self, capacity: &HashMap<usize, u32>) -> bool {
        self.qubit_demand()
            .iter()
            .all(|(node, need)| capacity.get(node).is_none_or(|have| need <= have))
    }

    /// The analytic end-to-end rate: Eq. 2 for trees; the channel product
    /// times the fusion success for stars.
    pub fn analytic_rate(
        &self,
        swap_success: f64,
        attenuation: f64,
        fusion_success: Option<f64>,
    ) -> f64 {
        let product: f64 = self
            .channels
            .iter()
            .map(|c| c.analytic_rate(swap_success, attenuation))
            .product();
        match self.fusion_arity() {
            None => product,
            Some(n) => {
                let f = crate::fusion::FusionModel {
                    swap_success,
                    fixed: fusion_success,
                }
                .success_prob(n);
                product * f
            }
        }
    }

    /// Upper bound on qubits a slot allocates (2 per link plus two local
    /// qubits at a user-centered fusion), used to size the entanglement
    /// registry.
    pub fn max_qubits(&self) -> usize {
        2 * self.channels.iter().map(ChannelSpec::links).sum::<usize>() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hop() -> ChannelSpec {
        ChannelSpec::new(vec![0, 1, 2], vec![1000.0, 1000.0], &[false, true, false])
    }

    #[test]
    fn analytic_rate_matches_eq1() {
        let c = two_hop();
        let rate = c.analytic_rate(0.9, 1e-4);
        assert!((rate - 0.9 * (-0.2f64).exp()).abs() < 1e-12);
        let direct = ChannelSpec::new(vec![0, 2], vec![2500.0], &[false, false]);
        assert!((direct.analytic_rate(0.9, 1e-4) - (-0.25f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "interior node")]
    fn interior_user_rejected() {
        ChannelSpec::new(vec![0, 1, 2], vec![1.0, 1.0], &[false, false, false]);
    }

    #[test]
    fn tree_plan_accounting() {
        let plan = RoutingPlan::tree(vec![
            two_hop(),
            ChannelSpec::new(vec![0, 1, 3], vec![1000.0, 500.0], &[false, true, false]),
        ]);
        assert_eq!(plan.users(), vec![0, 2, 3]);
        assert_eq!(plan.qubit_demand()[&1], 4, "switch 1 relays twice");
        assert_eq!(plan.fusion_arity(), None);
        let mut caps = HashMap::new();
        caps.insert(1usize, 4u32);
        assert!(plan.fits_capacity(&caps));
        caps.insert(1, 2);
        assert!(!plan.fits_capacity(&caps));
    }

    #[test]
    fn star_plan_accounting() {
        // Users 0, 2, 3 star into switch 1.
        let arms = vec![
            ChannelSpec::new(vec![0, 1], vec![800.0], &[false, true]),
            ChannelSpec::new(vec![2, 1], vec![800.0], &[false, true]),
            ChannelSpec::new(vec![3, 1], vec![800.0], &[false, true]),
        ];
        let plan = RoutingPlan::fusion_star(arms, 1, true);
        assert_eq!(plan.users(), vec![0, 2, 3]);
        assert_eq!(plan.fusion_arity(), Some(3));
        assert_eq!(plan.qubit_demand()[&1], 3, "one pinned qubit per arm");
        // Analytic: p³ · q² with p = e^{-0.08}.
        let rate = plan.analytic_rate(0.9, 1e-4, None);
        let expected = (-0.08f64).exp().powi(3) * 0.81;
        assert!((rate - expected).abs() < 1e-12);
    }

    #[test]
    fn user_centered_star_arity_includes_center() {
        let arms = vec![
            ChannelSpec::new(vec![0, 9], vec![800.0], &[false, false]),
            ChannelSpec::new(vec![2, 9], vec![800.0], &[false, false]),
        ];
        let plan = RoutingPlan::fusion_star(arms, 9, false);
        assert_eq!(plan.fusion_arity(), Some(3));
        assert_eq!(plan.users(), vec![0, 2, 9]);
        assert!(plan.qubit_demand().is_empty());
    }

    #[test]
    #[should_panic(expected = "does not touch center")]
    fn stray_arm_rejected() {
        RoutingPlan::fusion_star(vec![two_hop()], 7, true);
    }

    #[test]
    fn max_qubits_bounds_allocation() {
        let plan = RoutingPlan::tree(vec![two_hop()]);
        assert_eq!(plan.max_qubits(), 6);
    }
}
