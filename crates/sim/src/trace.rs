//! Structured protocol traces.
//!
//! Each simulated slot can emit a sequence of [`Event`]s — link attempts,
//! BSMs, fusions, and the final outcome — giving operators and tests an
//! audit trail of *why* a slot failed. The engine exposes
//! [`crate::Simulator::run_slot_observed`]; this module defines the event
//! vocabulary and a small recording observer.

use serde::{Deserialize, Serialize};

/// One protocol event within a slot.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A heralded link-generation attempt on channel `channel`, link
    /// index `link`.
    LinkAttempt {
        /// Channel index within the plan.
        channel: usize,
        /// Link index within the channel.
        link: usize,
        /// Whether the Bell pair was established.
        success: bool,
    },
    /// A BSM at an interior switch of `channel`.
    Swap {
        /// Channel index within the plan.
        channel: usize,
        /// Node index of the measuring switch.
        switch: usize,
        /// Whether the measurement succeeded.
        success: bool,
    },
    /// The GHZ fusion at a star plan's center.
    Fusion {
        /// Node index of the center.
        center: usize,
        /// Number of fused qubits.
        arity: usize,
        /// Whether the measurement succeeded.
        success: bool,
    },
    /// The slot's final verdict.
    SlotOutcome {
        /// Whether all users ended up entangled.
        success: bool,
    },
}

/// Forwards one protocol event into the `qnet-obs` counter registry
/// (`sim.link.attempts{outcome=…}`, `sim.swap.attempts{…}`,
/// `sim.fusion.attempts{…}`, `sim.slot.outcomes{…}`) and, at
/// [`qnet_obs::ObsLevel::Trace`], into the flight recorder as
/// [`qnet_obs::TraceEvent::Protocol`] entries.
///
/// The engine taps every observed slot through this bridge whenever the
/// observability level admits counters, so Monte-Carlo runs surface
/// their protocol-step totals without a custom observer.
pub fn obs_bridge(event: Event) {
    if qnet_obs::trace_enabled() {
        let (kind, channel, index, success) = match event {
            Event::LinkAttempt {
                channel,
                link,
                success,
            } => ("link", channel, link, success),
            Event::Swap {
                channel,
                switch,
                success,
            } => ("swap", channel, switch, success),
            Event::Fusion {
                center,
                arity,
                success,
            } => ("fusion", center, arity, success),
            Event::SlotOutcome { success } => ("slot", 0, 0, success),
        };
        qnet_obs::record_event(qnet_obs::TraceEvent::Protocol {
            kind,
            channel: channel as u32,
            index: index as u32,
            success,
        });
    }
    match event {
        Event::LinkAttempt { success: true, .. } => {
            qnet_obs::counter!("sim.link.attempts", outcome = "success");
        }
        Event::LinkAttempt { success: false, .. } => {
            qnet_obs::counter!("sim.link.attempts", outcome = "failure");
        }
        Event::Swap { success: true, .. } => {
            qnet_obs::counter!("sim.swap.attempts", outcome = "success");
        }
        Event::Swap { success: false, .. } => {
            qnet_obs::counter!("sim.swap.attempts", outcome = "failure");
        }
        Event::Fusion { success: true, .. } => {
            qnet_obs::counter!("sim.fusion.attempts", outcome = "success");
        }
        Event::Fusion { success: false, .. } => {
            qnet_obs::counter!("sim.fusion.attempts", outcome = "failure");
        }
        Event::SlotOutcome { success: true } => {
            qnet_obs::counter!("sim.slot.outcomes", outcome = "success");
        }
        Event::SlotOutcome { success: false } => {
            qnet_obs::counter!("sim.slot.outcomes", outcome = "failure");
        }
    }
}

/// An observer collecting every event of the observed slots.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    /// The recorded events, in emission order.
    pub events: Vec<Event>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of a given slot outcome kind, e.g. all failed swaps.
    pub fn failed_swaps(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Swap { success: false, .. }))
    }

    /// The first cause of failure in the record: the earliest
    /// unsuccessful link/swap/fusion event.
    pub fn first_failure(&self) -> Option<&Event> {
        self.events.iter().find(|e| {
            matches!(
                e,
                Event::LinkAttempt { success: false, .. }
                    | Event::Swap { success: false, .. }
                    | Event::Fusion { success: false, .. }
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimPhysics, Simulator};
    use crate::plan::{ChannelSpec, RoutingPlan};

    fn sim(q: f64, attenuation: f64, seed: u64) -> Simulator {
        let plan = RoutingPlan::tree(vec![ChannelSpec::new(
            vec![0, 1, 2],
            vec![1000.0, 1000.0],
            &[false, true, false],
        )]);
        Simulator::new(
            plan,
            SimPhysics {
                swap_success: q,
                attenuation,
                fusion_success: None,
            },
            seed,
        )
    }

    #[test]
    fn perfect_slot_traces_links_then_swap_then_outcome() {
        let mut s = sim(1.0, 0.0, 1);
        let mut rec = Recorder::new();
        let ok = s.run_slot_observed(&mut |e| rec.events.push(e));
        assert!(ok);
        assert_eq!(
            rec.events,
            vec![
                Event::LinkAttempt {
                    channel: 0,
                    link: 0,
                    success: true
                },
                Event::LinkAttempt {
                    channel: 0,
                    link: 1,
                    success: true
                },
                Event::Swap {
                    channel: 0,
                    switch: 1,
                    success: true
                },
                Event::SlotOutcome { success: true },
            ]
        );
        assert!(rec.first_failure().is_none());
    }

    #[test]
    fn failed_swap_is_the_first_failure() {
        let mut s = sim(0.0, 0.0, 2);
        let mut rec = Recorder::new();
        let ok = s.run_slot_observed(&mut |e| rec.events.push(e));
        assert!(!ok);
        assert!(matches!(
            rec.first_failure(),
            Some(Event::Swap { success: false, .. })
        ));
        assert_eq!(rec.failed_swaps().count(), 1);
        assert_eq!(
            rec.events.last(),
            Some(&Event::SlotOutcome { success: false })
        );
    }

    #[test]
    fn traced_and_untraced_runs_agree() {
        // The observer must not perturb the RNG stream.
        let stats_plain = sim(0.9, 1e-4, 3).run_slots(2000);
        let mut s = sim(0.9, 1e-4, 3);
        let mut successes = 0u64;
        for _ in 0..2000 {
            if s.run_slot_observed(&mut |_| {}) {
                successes += 1;
            }
        }
        assert_eq!(stats_plain.successes, successes);
    }

    #[test]
    fn fusion_events_appear_for_star_plans() {
        let plan = RoutingPlan::fusion_star(
            vec![
                ChannelSpec::new(vec![0, 9], vec![0.0], &[false, true]),
                ChannelSpec::new(vec![2, 9], vec![0.0], &[false, true]),
            ],
            9,
            true,
        );
        let mut s = Simulator::new(
            plan,
            SimPhysics {
                swap_success: 1.0,
                attenuation: 0.0,
                fusion_success: None,
            },
            4,
        );
        let mut rec = Recorder::new();
        assert!(s.run_slot_observed(&mut |e| rec.events.push(e)));
        assert!(rec.events.iter().any(|e| matches!(
            e,
            Event::Fusion {
                center: 9,
                arity: 2,
                success: true
            }
        )));
    }
}
