//! Buffered (asynchronous) entanglement generation — a protocol variant
//! beyond the paper's synchronized model.
//!
//! The paper's Eq. 1 assumes all links of a channel must succeed "during
//! the fixed time period" — a fully synchronized all-or-nothing slot.
//! Real memories can *hold* a heralded Bell pair for a few slots, letting
//! slow links catch up (the asynchronous routing idea of Farahbakhsh &
//! Feng \[14\], which the paper's related-work section cites). This module
//! simulates a channel under a memory **cutoff**: a link-level pair
//! survives at most `cutoff` additional slots before decohering.
//!
//! * `cutoff = 0` reproduces the paper's synchronized model exactly
//!   (validated in tests against Eq. 1).
//! * `cutoff > 0` strictly increases the per-slot entanglement rate,
//!   quantifying how much the synchronized assumption costs.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bsm::BsmModel;
use crate::link::LinkModel;
use crate::metrics::RateEstimate;

/// A single channel simulated under buffered link generation.
#[derive(Clone, Debug)]
pub struct BufferedChannel {
    lengths: Vec<f64>,
    link: LinkModel,
    bsm: BsmModel,
    cutoff: u32,
}

impl BufferedChannel {
    /// Creates the simulation for a channel with the given per-link fiber
    /// lengths.
    ///
    /// # Panics
    ///
    /// Panics when `lengths` is empty or physics parameters are out of
    /// range.
    pub fn new(lengths: Vec<f64>, swap_success: f64, attenuation: f64, cutoff: u32) -> Self {
        assert!(!lengths.is_empty(), "a channel has at least one link");
        BufferedChannel {
            lengths,
            link: LinkModel { attenuation },
            bsm: BsmModel::new(swap_success),
            cutoff,
        }
    }

    /// Number of links.
    pub fn links(&self) -> usize {
        self.lengths.len()
    }

    /// The synchronized-model analytic rate (paper Eq. 1) this channel
    /// would have: `q^(l−1) · Π exp(−α·Lᵢ)`.
    pub fn synchronized_rate(&self) -> f64 {
        let p: f64 = self
            .lengths
            .iter()
            .map(|&l| self.link.success_prob(l))
            .product();
        self.bsm.swap_success.powi(self.links() as i32 - 1) * p
    }

    /// Simulates `slots` time slots and counts end-to-end entanglements.
    ///
    /// Per slot: every link without a live pair attempts generation;
    /// pairs older than the cutoff decohere; when *all* links hold live
    /// pairs simultaneously, the interior switches swap (each succeeding
    /// with `q`), consuming every pair whatever the outcome — a failed
    /// swap collapses the whole attempt, as in the paper's model.
    pub fn run(&self, slots: u64, seed: u64) -> RateEstimate {
        let mut rng = StdRng::seed_from_u64(seed);
        // age[i]: Some(a) = link i holds a pair generated `a` slots ago.
        let mut age: Vec<Option<u32>> = vec![None; self.links()];
        let mut successes = 0u64;
        for _ in 0..slots {
            // Decohere and (re)generate.
            for (i, slot_age) in age.iter_mut().enumerate() {
                match slot_age {
                    Some(a) if *a >= self.cutoff => *slot_age = None,
                    Some(a) => *a += 1,
                    None => {}
                }
                if slot_age.is_none() && self.link.attempt(self.lengths[i], &mut rng) {
                    *slot_age = Some(0);
                }
            }
            // Swap when the whole channel is ready.
            if age.iter().all(Option::is_some) {
                let mut ok = true;
                for _ in 1..self.links() {
                    if !self.bsm.attempt(&mut rng) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    successes += 1;
                }
                // All pairs are consumed either way.
                age.iter_mut().for_each(|a| *a = None);
            }
        }
        RateEstimate {
            successes,
            trials: slots,
        }
    }
}

/// A rate + delivered-fidelity estimate from a fidelity-tracked run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FidelityTrackedStats {
    /// Per-slot end-to-end success estimate.
    pub rate: RateEstimate,
    /// Mean delivered end-to-end Werner fidelity over the successful
    /// slots (0 when nothing succeeded).
    pub mean_fidelity: f64,
}

impl BufferedChannel {
    /// Simulates `slots` slots tracking *delivered fidelity*: each stored
    /// Bell pair starts at `link_fidelity` and its depolarizing parameter
    /// decays by `memory_decay` per slot spent waiting in memory (1.0 =
    /// lossless memory). The end-to-end fidelity of a successful slot is
    /// the Werner composition of the (aged) link fidelities.
    ///
    /// This exposes the buffering trade-off the synchronized model hides:
    /// longer cutoffs raise the rate but deliver *older*, noisier pairs.
    ///
    /// # Panics
    ///
    /// Panics when `link_fidelity ∉ [1/4, 1]` or `memory_decay ∉ (0, 1]`.
    pub fn run_with_fidelity(
        &self,
        link_fidelity: f64,
        memory_decay: f64,
        slots: u64,
        seed: u64,
    ) -> FidelityTrackedStats {
        assert!(
            (0.25..=1.0).contains(&link_fidelity),
            "Werner link fidelity must be in [1/4, 1], got {link_fidelity}"
        );
        assert!(
            memory_decay > 0.0 && memory_decay <= 1.0,
            "memory decay must be in (0, 1], got {memory_decay}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let w_fresh = crate::fidelity::to_w(link_fidelity);
        let mut age: Vec<Option<u32>> = vec![None; self.links()];
        let mut successes = 0u64;
        let mut fidelity_sum = 0.0f64;
        for _ in 0..slots {
            for (i, slot_age) in age.iter_mut().enumerate() {
                match slot_age {
                    Some(a) if *a >= self.cutoff => *slot_age = None,
                    Some(a) => *a += 1,
                    None => {}
                }
                if slot_age.is_none() && self.link.attempt(self.lengths[i], &mut rng) {
                    *slot_age = Some(0);
                }
            }
            if age.iter().all(Option::is_some) {
                let mut ok = true;
                for _ in 1..self.links() {
                    if !self.bsm.attempt(&mut rng) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    successes += 1;
                    // Werner composition multiplies depolarizing
                    // parameters; memory aging multiplies in a decay per
                    // waited slot.
                    let w_total: f64 = age
                        .iter()
                        .map(|a| {
                            let waited = a.expect("all links ready");
                            w_fresh * memory_decay.powi(waited as i32)
                        })
                        .product();
                    fidelity_sum += crate::fidelity::from_w(w_total);
                }
                age.iter_mut().for_each(|a| *a = None);
            }
        }
        FidelityTrackedStats {
            rate: RateEstimate {
                successes,
                trials: slots,
            },
            mean_fidelity: if successes == 0 {
                0.0
            } else {
                fidelity_sum / successes as f64
            },
        }
    }
}

/// Time-to-entanglement for a whole tree under asynchronous completion.
///
/// The paper's synchronized model needs *every* channel of the tree to
/// succeed in the same slot: the expected wait is `1 / P` with `P` from
/// Eq. 2. If users can hold their completed channels (the paper grants
/// users "enough quantum memory"), channels complete independently and
/// the tree is ready at the *maximum* of the per-channel completion
/// times — exponentially faster for large trees.
#[derive(Clone, Debug)]
pub struct BufferedTree {
    channels: Vec<BufferedChannel>,
}

impl BufferedTree {
    /// Builds the tree simulation from per-channel fiber-length vectors.
    ///
    /// # Panics
    ///
    /// Panics when `channel_lengths` is empty or any channel is empty.
    pub fn new(
        channel_lengths: Vec<Vec<f64>>,
        swap_success: f64,
        attenuation: f64,
        cutoff: u32,
    ) -> Self {
        assert!(
            !channel_lengths.is_empty(),
            "a tree has at least one channel"
        );
        BufferedTree {
            channels: channel_lengths
                .into_iter()
                .map(|l| BufferedChannel::new(l, swap_success, attenuation, cutoff))
                .collect(),
        }
    }

    /// The synchronized model's expected slots to entangle everyone:
    /// `1 / P_tree` (geometric waiting on Eq. 2).
    pub fn synchronized_expected_slots(&self) -> f64 {
        let p: f64 = self
            .channels
            .iter()
            .map(BufferedChannel::synchronized_rate)
            .product();
        1.0 / p
    }

    /// Monte-Carlo mean slots until every channel has completed once,
    /// with completed channels held at the users (asynchronous tree
    /// building). Each channel runs its own buffered link protocol.
    pub fn mean_slots_to_completion(&self, trials: u64, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0u64;
        for _ in 0..trials {
            let mut done = vec![false; self.channels.len()];
            // Per-channel link ages, as in BufferedChannel::run.
            let mut ages: Vec<Vec<Option<u32>>> = self
                .channels
                .iter()
                .map(|c| vec![None; c.links()])
                .collect();
            let mut slots = 0u64;
            while !done.iter().all(|&d| d) {
                slots += 1;
                for (ci, channel) in self.channels.iter().enumerate() {
                    if done[ci] {
                        continue;
                    }
                    let age = &mut ages[ci];
                    for (i, slot_age) in age.iter_mut().enumerate() {
                        match slot_age {
                            Some(a) if *a >= channel.cutoff => *slot_age = None,
                            Some(a) => *a += 1,
                            None => {}
                        }
                        if slot_age.is_none() && channel.link.attempt(channel.lengths[i], &mut rng)
                        {
                            *slot_age = Some(0);
                        }
                    }
                    if age.iter().all(Option::is_some) {
                        let mut ok = true;
                        for _ in 1..channel.links() {
                            if !channel.bsm.attempt(&mut rng) {
                                ok = false;
                                break;
                            }
                        }
                        age.iter_mut().for_each(|a| *a = None);
                        if ok {
                            done[ci] = true;
                        }
                    }
                }
                if slots > 10_000_000 {
                    panic!("tree completion did not converge; check parameters");
                }
            }
            total += slots;
        }
        total as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(cutoff: u32) -> BufferedChannel {
        BufferedChannel::new(vec![3000.0, 5000.0, 4000.0], 0.9, 1e-4, cutoff)
    }

    #[test]
    fn zero_cutoff_matches_synchronized_eq1() {
        let c = channel(0);
        let analytic = c.synchronized_rate();
        let est = c.run(120_000, 5);
        assert!(
            est.wilson_interval(4.0).contains(analytic),
            "MC {} vs Eq. 1 {analytic}",
            est.point()
        );
    }

    #[test]
    fn buffering_strictly_helps() {
        let sync = channel(0).run(80_000, 6).point();
        let buf2 = channel(2).run(80_000, 6).point();
        let buf8 = channel(8).run(80_000, 6).point();
        assert!(
            buf2 > sync * 1.2,
            "cutoff 2 should clearly help: {buf2} vs {sync}"
        );
        assert!(buf8 >= buf2, "longer memory never hurts: {buf8} vs {buf2}");
    }

    #[test]
    fn single_link_channel_needs_no_swaps() {
        let c = BufferedChannel::new(vec![2000.0], 0.9, 1e-4, 0);
        let analytic = (-0.2f64).exp();
        assert!((c.synchronized_rate() - analytic).abs() < 1e-12);
        let est = c.run(60_000, 7);
        assert!(est.wilson_interval(4.0).contains(analytic));
    }

    #[test]
    fn buffered_rate_is_bounded_by_bottleneck_link() {
        // Even infinite patience cannot beat the slowest link's success
        // probability per slot (one end-to-end attempt needs at least one
        // fresh success on every link).
        let c = channel(50);
        let est = c.run(80_000, 8).point();
        let bottleneck = (-0.5f64).exp(); // worst link: 5000 km
        assert!(
            est <= bottleneck,
            "rate {est} exceeds bottleneck {bottleneck}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_channel_rejected() {
        BufferedChannel::new(vec![], 0.9, 1e-4, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = channel(3).run(5_000, 9);
        let b = channel(3).run(5_000, 9);
        assert_eq!(a, b);
    }

    fn tree(cutoff: u32) -> BufferedTree {
        BufferedTree::new(
            vec![
                vec![2000.0, 3000.0],
                vec![4000.0],
                vec![1500.0, 2500.0, 2000.0],
            ],
            0.9,
            1e-4,
            cutoff,
        )
    }

    #[test]
    fn async_completion_beats_synchronized_waiting() {
        let t = tree(0);
        let sync = t.synchronized_expected_slots();
        let async_mean = t.mean_slots_to_completion(400, 11);
        assert!(
            async_mean < sync * 0.8,
            "holding completed channels must pay off: async {async_mean} vs sync {sync}"
        );
    }

    #[test]
    fn buffering_also_speeds_tree_completion() {
        let slow = tree(0).mean_slots_to_completion(400, 12);
        let fast = tree(4).mean_slots_to_completion(400, 12);
        assert!(
            fast < slow,
            "cutoff 4 should complete faster: {fast} vs {slow}"
        );
    }

    #[test]
    fn single_channel_tree_matches_geometric_wait() {
        // One channel, cutoff 0: completion is geometric with p = Eq. 1,
        // so the mean is 1/p.
        let t = BufferedTree::new(vec![vec![3000.0, 3000.0]], 0.9, 1e-4, 0);
        let p = 0.9 * (-0.6f64).exp();
        let mean = t.mean_slots_to_completion(4000, 13);
        let expected = 1.0 / p;
        // Geometric std is ~expected; 4000 trials → s.e. ≈ expected/63.
        assert!(
            (mean - expected).abs() < expected * 0.1,
            "mean {mean} vs geometric {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_tree_rejected() {
        BufferedTree::new(vec![], 0.9, 1e-4, 0);
    }

    #[test]
    fn sync_cutoff_delivers_fresh_fidelity() {
        // cutoff 0: every surviving pair is fresh, so delivered fidelity
        // equals the closed-form chain fidelity exactly.
        let c = channel(0);
        let stats = c.run_with_fidelity(0.97, 0.98, 60_000, 21);
        let expected = crate::fidelity::chain_fidelity(0.97, c.links());
        assert!(
            (stats.mean_fidelity - expected).abs() < 1e-9,
            "delivered {} vs closed-form {expected}",
            stats.mean_fidelity
        );
        assert!(stats.rate.successes > 0);
    }

    #[test]
    fn buffering_trades_fidelity_for_rate() {
        let sync = channel(0).run_with_fidelity(0.97, 0.95, 80_000, 22);
        let buffered = channel(6).run_with_fidelity(0.97, 0.95, 80_000, 22);
        assert!(
            buffered.rate.point() > sync.rate.point(),
            "buffering must raise the rate"
        );
        assert!(
            buffered.mean_fidelity < sync.mean_fidelity,
            "aged memories must lower delivered fidelity: {} vs {}",
            buffered.mean_fidelity,
            sync.mean_fidelity
        );
    }

    #[test]
    fn lossless_memory_preserves_fidelity() {
        let c = channel(8);
        let stats = c.run_with_fidelity(0.97, 1.0, 40_000, 23);
        let expected = crate::fidelity::chain_fidelity(0.97, c.links());
        assert!((stats.mean_fidelity - expected).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "memory decay")]
    fn zero_decay_rejected() {
        channel(2).run_with_fidelity(0.97, 0.0, 10, 24);
    }
}
