//! Success-rate estimation with Wilson confidence intervals.

use serde::{Deserialize, Serialize};

/// A closed interval on the probability line.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// `true` when `p` lies within the interval (inclusive).
    ///
    /// NaN is never contained — neither as `p` nor when either bound is
    /// NaN — and an empty interval (`lo > hi`) contains nothing.
    pub fn contains(&self, p: f64) -> bool {
        (self.lo..=self.hi).contains(&p)
    }

    /// Interval width; 0 for empty intervals (`lo > hi`) rather than a
    /// negative number, so widths can be summed and compared safely.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }
}

/// A Bernoulli success-rate estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Number of successful trials.
    pub successes: u64,
    /// Total trials.
    pub trials: u64,
}

impl RateEstimate {
    /// The point estimate `successes / trials` (0 for zero trials).
    pub fn point(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// The Wilson score interval at `z` standard normal deviations —
    /// well-behaved even at 0 or `n` successes, unlike the Wald
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics for zero trials or a `z` that is not positive and finite
    /// (NaN and infinities would silently poison both bounds).
    pub fn wilson_interval(&self, z: f64) -> Interval {
        assert!(self.trials > 0, "no trials recorded");
        assert!(
            z > 0.0 && z.is_finite(),
            "z must be positive and finite, got {z}"
        );
        let n = self.trials as f64;
        let p = self.point();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        Interval {
            lo: (center - half).max(0.0),
            hi: (center + half).min(1.0),
        }
    }

    /// Merges two estimates (e.g. from parallel simulation shards).
    pub fn merge(self, other: RateEstimate) -> RateEstimate {
        RateEstimate {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimates() {
        assert_eq!(RateEstimate::default().point(), 0.0);
        let e = RateEstimate {
            successes: 30,
            trials: 100,
        };
        assert!((e.point() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn wilson_contains_truth_for_fair_coin() {
        let e = RateEstimate {
            successes: 5_050,
            trials: 10_000,
        };
        let iv = e.wilson_interval(3.0);
        assert!(iv.contains(0.5));
        assert!(iv.width() < 0.04);
    }

    #[test]
    fn wilson_is_sane_at_extremes() {
        let zero = RateEstimate {
            successes: 0,
            trials: 100,
        };
        let iv = zero.wilson_interval(2.0);
        assert!(iv.lo.abs() < 1e-12, "lower bound ~0, got {}", iv.lo);
        assert!(iv.hi > 0.0 && iv.hi < 0.1);
        assert!(iv.contains(0.0) || iv.lo < 1e-12);
        let all = RateEstimate {
            successes: 100,
            trials: 100,
        };
        let iv = all.wilson_interval(2.0);
        assert!((iv.hi - 1.0).abs() < 1e-12, "upper bound ~1, got {}", iv.hi);
        assert!(iv.lo > 0.9);
    }

    #[test]
    fn interval_narrows_with_more_trials() {
        let small = RateEstimate {
            successes: 50,
            trials: 100,
        };
        let big = RateEstimate {
            successes: 5_000,
            trials: 10_000,
        };
        assert!(big.wilson_interval(2.0).width() < small.wilson_interval(2.0).width());
    }

    #[test]
    fn merge_adds_counts() {
        let a = RateEstimate {
            successes: 10,
            trials: 40,
        };
        let b = RateEstimate {
            successes: 5,
            trials: 60,
        };
        let m = a.merge(b);
        assert_eq!(m.successes, 15);
        assert_eq!(m.trials, 100);
        assert!((m.point() - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn interval_needs_trials() {
        RateEstimate::default().wilson_interval(2.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn interval_rejects_nan_z() {
        let e = RateEstimate {
            successes: 1,
            trials: 2,
        };
        e.wilson_interval(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn interval_rejects_infinite_z() {
        let e = RateEstimate {
            successes: 1,
            trials: 2,
        };
        e.wilson_interval(f64::INFINITY);
    }

    #[test]
    fn contains_is_inclusive_at_both_ends() {
        let iv = Interval { lo: 0.25, hi: 0.75 };
        assert!(iv.contains(0.25));
        assert!(iv.contains(0.75));
        assert!(iv.contains(0.5));
        assert!(!iv.contains(0.25 - 1e-12));
        assert!(!iv.contains(0.75 + 1e-12));
    }

    #[test]
    fn degenerate_interval_contains_only_its_point() {
        let iv = Interval { lo: 0.5, hi: 0.5 };
        assert!(iv.contains(0.5));
        assert!(!iv.contains(0.5 + f64::EPSILON));
        assert_eq!(iv.width(), 0.0);
    }

    #[test]
    fn empty_interval_contains_nothing_and_has_zero_width() {
        let iv = Interval { lo: 0.7, hi: 0.3 };
        assert!(!iv.contains(0.5));
        assert!(!iv.contains(0.7));
        assert!(!iv.contains(0.3));
        assert_eq!(iv.width(), 0.0, "width must clamp, not go negative");
    }

    #[test]
    fn nan_is_never_contained() {
        let iv = Interval { lo: 0.0, hi: 1.0 };
        assert!(!iv.contains(f64::NAN));
        let nan_lo = Interval {
            lo: f64::NAN,
            hi: 1.0,
        };
        assert!(!nan_lo.contains(0.5));
        let nan_hi = Interval {
            lo: 0.0,
            hi: f64::NAN,
        };
        assert!(!nan_hi.contains(0.5));
    }
}
