//! Entanglement bookkeeping: which qubits currently form one entangled
//! group.
//!
//! The simulator does not track amplitudes — for Bell/GHZ distribution
//! protocols the *membership structure* (which qubits are jointly
//! entangled) plus success probabilities is exactly the abstraction the
//! paper's model uses. A [`Registry`] is created fresh each time slot;
//! Bell pairs, BSM swaps, and fusions manipulate group membership, and
//! the engine asserts end-to-end entanglement from the registry state,
//! not from a formula.

use qnet_graph::UnionFind;

/// A qubit allocated for the current time slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QubitId(usize);

impl QubitId {
    /// Dense index of this qubit within its registry.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-slot entanglement state over dynamically allocated qubits.
#[derive(Debug)]
pub struct Registry {
    node_of: Vec<usize>,
    entangled: Vec<bool>,
    consumed: Vec<bool>,
    groups: UnionFind,
}

impl Registry {
    /// Creates a registry able to hold up to `max_qubits` allocations.
    ///
    /// The bound exists because the union-find is pre-sized; allocating
    /// beyond it panics.
    pub fn with_capacity(max_qubits: usize) -> Self {
        Registry {
            node_of: Vec::with_capacity(max_qubits),
            entangled: vec![false; max_qubits],
            consumed: vec![false; max_qubits],
            groups: UnionFind::new(max_qubits),
        }
    }

    /// Allocates a fresh (unentangled) qubit residing at `node`.
    ///
    /// # Panics
    ///
    /// Panics when the capacity given at construction is exhausted.
    pub fn alloc(&mut self, node: usize) -> QubitId {
        let id = self.node_of.len();
        assert!(
            id < self.groups.len(),
            "registry capacity {} exhausted",
            self.groups.len()
        );
        self.node_of.push(node);
        QubitId(id)
    }

    /// The node a qubit resides at.
    pub fn node_of(&self, q: QubitId) -> usize {
        self.node_of[q.0]
    }

    /// Number of allocated qubits.
    pub fn allocated(&self) -> usize {
        self.node_of.len()
    }

    /// Records a fresh Bell pair between `a` and `b` (link-level heralded
    /// entanglement succeeded).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is already entangled or consumed — link
    /// generation always targets fresh memory.
    pub fn bell_pair(&mut self, a: QubitId, b: QubitId) {
        assert!(
            !self.entangled[a.0] && !self.entangled[b.0],
            "bell_pair on already-entangled qubits"
        );
        assert!(
            !self.consumed[a.0] && !self.consumed[b.0],
            "bell_pair on consumed qubits"
        );
        self.entangled[a.0] = true;
        self.entangled[b.0] = true;
        self.groups.union(a.0, b.0);
    }

    /// Performs a *successful* BSM at a switch holding `x` and `y`:
    /// splices their two entanglement groups into one and consumes both
    /// measured qubits (they are freed, matching the paper's Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if the two qubits are not co-located, not entangled, or
    /// already consumed.
    pub fn swap(&mut self, x: QubitId, y: QubitId) {
        assert_eq!(
            self.node_of[x.0], self.node_of[y.0],
            "BSM requires co-located qubits"
        );
        assert!(
            self.entangled[x.0] && self.entangled[y.0],
            "BSM requires both qubits entangled"
        );
        assert!(
            !self.consumed[x.0] && !self.consumed[y.0],
            "BSM on consumed qubits"
        );
        self.groups.union(x.0, y.0);
        self.consumed[x.0] = true;
        self.consumed[y.0] = true;
    }

    /// Performs a *successful* n-fusion (GHZ projective measurement) on
    /// co-located qubits: merges all their groups and consumes them.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 2 qubits or the same preconditions as
    /// [`Registry::swap`].
    pub fn fuse(&mut self, qubits: &[QubitId]) {
        assert!(qubits.len() >= 2, "fusion needs at least 2 qubits");
        let node = self.node_of[qubits[0].0];
        for &q in qubits {
            assert_eq!(self.node_of[q.0], node, "fusion requires co-location");
            assert!(self.entangled[q.0], "fusion requires entangled qubits");
            assert!(!self.consumed[q.0], "fusion on consumed qubit");
        }
        for w in qubits.windows(2) {
            self.groups.union(w[0].0, w[1].0);
        }
        for &q in qubits {
            self.consumed[q.0] = true;
        }
    }

    /// `true` when the two qubits belong to one entangled group and
    /// neither has been consumed by a measurement.
    pub fn entangled_together(&mut self, a: QubitId, b: QubitId) -> bool {
        self.entangled[a.0]
            && self.entangled[b.0]
            && !self.consumed[a.0]
            && !self.consumed[b.0]
            && self.groups.same_set(a.0, b.0)
    }

    /// `true` when all listed qubits are live (entangled, unconsumed) and
    /// mutually in one group.
    pub fn all_entangled_together(&mut self, qubits: &[QubitId]) -> bool {
        match qubits.split_first() {
            None => true,
            Some((&first, rest)) => rest.iter().all(|&q| self.entangled_together(first, q)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_splices_two_pairs() {
        // Alice(0) — Switch(1) — Bob(2): the paper's Fig. 1.
        let mut reg = Registry::with_capacity(4);
        let alice = reg.alloc(0);
        let s_left = reg.alloc(1);
        let s_right = reg.alloc(1);
        let bob = reg.alloc(2);
        reg.bell_pair(alice, s_left);
        reg.bell_pair(s_right, bob);
        assert!(!reg.entangled_together(alice, bob));
        reg.swap(s_left, s_right);
        assert!(reg.entangled_together(alice, bob));
        // Switch qubits are consumed ("freed qubit" in Fig. 1).
        assert!(!reg.entangled_together(alice, s_left));
    }

    #[test]
    fn fusion_entangles_three_users() {
        // The paper's Fig. 2: 3-fusion at a switch.
        let mut reg = Registry::with_capacity(6);
        let users: Vec<QubitId> = (0..3).map(|n| reg.alloc(n)).collect();
        let switch_qubits: Vec<QubitId> = (0..3).map(|_| reg.alloc(9)).collect();
        for i in 0..3 {
            reg.bell_pair(users[i], switch_qubits[i]);
        }
        reg.fuse(&switch_qubits);
        assert!(reg.all_entangled_together(&users));
    }

    #[test]
    fn fresh_qubits_are_not_entangled() {
        let mut reg = Registry::with_capacity(2);
        let a = reg.alloc(0);
        let b = reg.alloc(1);
        assert!(!reg.entangled_together(a, b));
        assert!(reg.all_entangled_together(&[]));
        assert!(reg.all_entangled_together(&[a]));
    }

    #[test]
    #[should_panic(expected = "co-located")]
    fn swap_requires_colocation() {
        let mut reg = Registry::with_capacity(4);
        let a = reg.alloc(0);
        let b = reg.alloc(1);
        let c = reg.alloc(2);
        let d = reg.alloc(3);
        reg.bell_pair(a, b);
        reg.bell_pair(c, d);
        reg.swap(b, c); // different nodes
    }

    #[test]
    #[should_panic(expected = "already-entangled")]
    fn double_bell_pair_rejected() {
        let mut reg = Registry::with_capacity(3);
        let a = reg.alloc(0);
        let b = reg.alloc(1);
        let c = reg.alloc(2);
        reg.bell_pair(a, b);
        reg.bell_pair(b, c);
    }

    #[test]
    #[should_panic(expected = "consumed")]
    fn measured_qubits_cannot_swap_again() {
        let mut reg = Registry::with_capacity(6);
        let q: Vec<QubitId> = (0..6).map(|_| reg.alloc(1)).collect();
        reg.bell_pair(q[0], q[1]);
        reg.bell_pair(q[2], q[3]);
        reg.swap(q[1], q[2]);
        reg.bell_pair(q[4], q[5]);
        reg.swap(q[1], q[4]); // q[1] was consumed
    }

    #[test]
    fn chain_of_swaps_spans_long_channel() {
        // u — s — s — s — u: three switches, three swaps.
        let mut reg = Registry::with_capacity(8);
        let left = reg.alloc(0);
        let mut prev = left;
        let mut pending: Vec<(QubitId, QubitId)> = Vec::new();
        for node in 1..=3 {
            let in_q = reg.alloc(node);
            let out_q = reg.alloc(node);
            reg.bell_pair(prev, in_q);
            pending.push((in_q, out_q));
            prev = out_q;
        }
        let right = reg.alloc(4);
        reg.bell_pair(prev, right);
        for (in_q, out_q) in pending {
            reg.swap(in_q, out_q);
        }
        assert!(reg.entangled_together(left, right));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_allocation_panics() {
        let mut reg = Registry::with_capacity(1);
        reg.alloc(0);
        reg.alloc(0);
    }
}
