//! n-fusion: GHZ projective measurements (the paper's Fig. 2).
//!
//! An n-fusion measures `n` co-located qubits jointly, projecting their
//! remote partners into an n-GHZ state. The paper stresses (§I, refs
//! \[38\]–\[40\]) that GHZ measurements are *less reliable* than BSMs; the
//! default model compounds the BSM rate per fused qubit beyond the
//! first, `q^(n−1)`, which exactly recovers a BSM at `n = 2`.

use rand::Rng;

/// Success model of an n-qubit GHZ projective measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FusionModel {
    /// BSM success rate `q` the power law compounds.
    pub swap_success: f64,
    /// Optional fixed per-measurement probability overriding the power
    /// law.
    pub fixed: Option<f64>,
}

impl FusionModel {
    /// Success probability of fusing `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics when `n < 2`.
    pub fn success_prob(&self, n: usize) -> f64 {
        assert!(n >= 2, "fusion needs at least 2 qubits, got {n}");
        match self.fixed {
            Some(p) => p,
            None => self.swap_success.powi(n as i32 - 1),
        }
    }

    /// Samples one fusion attempt on `n` qubits.
    pub fn attempt<R: Rng>(&self, n: usize, rng: &mut R) -> bool {
        rng.random_bool(self.success_prob(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_recovers_bsm_at_two() {
        let m = FusionModel {
            swap_success: 0.9,
            fixed: None,
        };
        assert!((m.success_prob(2) - 0.9).abs() < 1e-12);
        assert!((m.success_prob(5) - 0.9f64.powi(4)).abs() < 1e-12);
        // Strictly decreasing in arity: fusing more is harder.
        assert!(m.success_prob(3) < m.success_prob(2));
    }

    #[test]
    fn fixed_model_ignores_arity() {
        let m = FusionModel {
            swap_success: 0.9,
            fixed: Some(0.42),
        };
        assert_eq!(m.success_prob(2), 0.42);
        assert_eq!(m.success_prob(10), 0.42);
    }

    #[test]
    fn sampling_matches_probability() {
        let m = FusionModel {
            swap_success: 0.9,
            fixed: None,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 50_000;
        let p = m.success_prob(4);
        let hits = (0..trials).filter(|_| m.attempt(4, &mut rng)).count() as f64;
        let sigma = (p * (1.0 - p) / trials as f64).sqrt();
        assert!((hits / trials as f64 - p).abs() < 5.0 * sigma);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn unary_fusion_rejected() {
        FusionModel {
            swap_success: 0.9,
            fixed: None,
        }
        .success_prob(1);
    }
}
