//! Exhaustive mapping from the protocol-event vocabulary onto obs
//! counter families.
//!
//! The match in [`all_variants`] is deliberately wildcard-free: adding a
//! variant to [`Event`] breaks compilation here until the new variant is
//! given bridge coverage, keeping the counter vocabulary and the event
//! vocabulary in lockstep.

use std::sync::Mutex;

use qnet_sim::trace::{obs_bridge, Event};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Every [`Event`] variant (both outcomes), paired with the counter
/// family `obs_bridge` must route it to.
fn all_variants() -> Vec<(Event, &'static str)> {
    let mut cases = Vec::new();
    for success in [true, false] {
        // One representative per variant; the exhaustive match below is
        // the compile-time guard that none is forgotten.
        let representatives = [
            Event::LinkAttempt {
                channel: 0,
                link: 1,
                success,
            },
            Event::Swap {
                channel: 0,
                switch: 2,
                success,
            },
            Event::Fusion {
                center: 3,
                arity: 4,
                success,
            },
            Event::SlotOutcome { success },
        ];
        for event in representatives {
            let family = match event {
                Event::LinkAttempt { .. } => "sim.link.attempts",
                Event::Swap { .. } => "sim.swap.attempts",
                Event::Fusion { .. } => "sim.fusion.attempts",
                Event::SlotOutcome { .. } => "sim.slot.outcomes",
            };
            cases.push((event, family));
        }
    }
    cases
}

const ALL_FAMILIES: [&str; 4] = [
    "sim.link.attempts",
    "sim.swap.attempts",
    "sim.fusion.attempts",
    "sim.slot.outcomes",
];

#[test]
fn every_event_variant_maps_to_exactly_one_counter_family() {
    let _serial = serial();
    qnet_obs::set_level(qnet_obs::ObsLevel::Counters);

    for (event, family) in all_variants() {
        qnet_obs::global().reset();
        obs_bridge(event);
        let report = qnet_obs::RunReport::capture("bridge");

        // Exactly one family incremented, by exactly one, ...
        for candidate in ALL_FAMILIES {
            let expected = u64::from(candidate == family);
            assert_eq!(
                report.counter_total(candidate),
                expected,
                "{event:?} must bump {family} only (checked {candidate})"
            );
        }
        // ... and exactly one labeled counter key exists in total, with
        // the outcome label matching the event's success flag.
        assert_eq!(report.counters.len(), 1, "{event:?} bumped extra keys");
        let outcome = if event_success(event) {
            "success"
        } else {
            "failure"
        };
        let expected_key = format!("{family}{{outcome={outcome}}}");
        assert_eq!(report.counters[0].key, expected_key, "for {event:?}");
        assert_eq!(report.counters[0].value, 1);
    }
}

fn event_success(event: Event) -> bool {
    match event {
        Event::LinkAttempt { success, .. }
        | Event::Swap { success, .. }
        | Event::Fusion { success, .. }
        | Event::SlotOutcome { success } => success,
    }
}

#[test]
fn trace_level_mirrors_events_into_the_flight_recorder() {
    let _serial = serial();
    qnet_obs::set_level(qnet_obs::ObsLevel::Trace);
    qnet_obs::global().reset();
    qnet_obs::reset_trace();

    obs_bridge(Event::Swap {
        channel: 2,
        switch: 7,
        success: true,
    });
    obs_bridge(Event::SlotOutcome { success: false });

    let snap = qnet_obs::trace_snapshot();
    assert_eq!(snap.len(), 2);
    assert_eq!(
        snap[0].event,
        qnet_obs::TraceEvent::Protocol {
            kind: "swap",
            channel: 2,
            index: 7,
            success: true,
        }
    );
    assert_eq!(
        snap[1].event,
        qnet_obs::TraceEvent::Protocol {
            kind: "slot",
            channel: 0,
            index: 0,
            success: false,
        }
    );
    // Counters keep flowing at trace level too.
    let report = qnet_obs::RunReport::capture("bridge-trace");
    assert_eq!(report.counter_total("sim.swap.attempts"), 1);
    assert_eq!(report.counter_total("sim.slot.outcomes"), 1);

    qnet_obs::reset_trace();
    qnet_obs::global().reset();
    qnet_obs::set_level(qnet_obs::ObsLevel::Counters);
}
