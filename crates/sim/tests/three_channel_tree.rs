//! Conformance check: the Monte-Carlo protocol simulation of one fixed
//! three-channel entanglement tree must agree with the analytic Eq. 2
//! rate computed by hand from the raw fiber lengths.
//!
//! The tree serves users {0, 2, 4, 6} through switches {1, 3, 5}:
//!
//! ```text
//!   0 ──1200m── [1] ──800m── 2 ──1500m── [3] ──900m── 4 ──600m── [5] ──1100m── 6
//! ```
//!
//! Each channel has two links (one swap), so Eq. 1 gives
//! `q · exp(−α·ΣL)` per channel and Eq. 2 their product.

use qnet_sim::{ChannelSpec, RoutingPlan, SimPhysics, Simulator};

const SLOTS: u64 = 60_000;
const Z: f64 = 4.4; // ~1e-5 two-sided: negligible flake risk
const Q: f64 = 0.85;
const ALPHA: f64 = 1e-4;

fn three_channel_plan() -> RoutingPlan {
    RoutingPlan::tree(vec![
        ChannelSpec::new(vec![0, 1, 2], vec![1200.0, 800.0], &[false, true, false]),
        ChannelSpec::new(vec![2, 3, 4], vec![1500.0, 900.0], &[false, true, false]),
        ChannelSpec::new(vec![4, 5, 6], vec![600.0, 1100.0], &[false, true, false]),
    ])
}

/// Eq. 2 computed by hand — no shared code with the simulator's own
/// `analytic_rate`, so both implementations cross-check each other.
fn hand_rate() -> f64 {
    let channel = |lengths: [f64; 2]| Q * (-ALPHA * (lengths[0] + lengths[1])).exp();
    channel([1200.0, 800.0]) * channel([1500.0, 900.0]) * channel([600.0, 1100.0])
}

#[test]
fn fixed_tree_monte_carlo_matches_hand_computed_eq2() {
    let physics = SimPhysics {
        swap_success: Q,
        attenuation: ALPHA,
        fusion_success: None,
    };
    let analytic = hand_rate();
    let mut sim = Simulator::new(three_channel_plan(), physics, 0x7ee3);
    assert!(
        (sim.analytic_rate() - analytic).abs() <= 1e-12,
        "simulator analytic rate {} disagrees with the hand computation {analytic}",
        sim.analytic_rate()
    );
    let stats = sim.run_slots(SLOTS);
    let iv = stats.estimate().wilson_interval(Z);
    assert!(
        iv.contains(analytic),
        "Monte-Carlo {} rejects the hand-computed Eq. 2 rate {analytic} (interval [{}, {}])",
        stats.estimate().point(),
        iv.lo,
        iv.hi
    );
}

#[test]
fn fixed_tree_rate_is_seed_stable() {
    // Two distinct seeds must both bracket the analytic value — the
    // estimate depends on the seed, correctness does not.
    let physics = SimPhysics {
        swap_success: Q,
        attenuation: ALPHA,
        fusion_success: None,
    };
    let analytic = hand_rate();
    for seed in [1u64, 0xdead] {
        let stats = Simulator::new(three_channel_plan(), physics, seed).run_slots(SLOTS);
        let iv = stats.estimate().wilson_interval(Z);
        assert!(
            iv.contains(analytic),
            "seed {seed}: interval [{}, {}] misses {analytic}",
            iv.lo,
            iv.hi
        );
    }
}
