//! Property-based tests over random routing plans.

use proptest::prelude::*;
use qnet_sim::engine::{SimPhysics, Simulator};
use qnet_sim::plan::{ChannelSpec, RoutingPlan};

/// A random tree plan: up to 4 channels of up to 4 links each, disjoint
/// node-id ranges per channel so the plan is structurally a valid star.
fn arb_tree_plan() -> impl Strategy<Value = RoutingPlan> {
    proptest::collection::vec(
        (1usize..=4, proptest::collection::vec(0.0f64..4000.0, 4)),
        1..=4,
    )
    .prop_map(|channels| {
        let mut specs = Vec::new();
        for (ci, (links, lens)) in channels.into_iter().enumerate() {
            let base = 100 * (ci + 1);
            // Chain: user(base) - sw(base+1) ... - user(0) so channels
            // share user 0 (a star over user 0 = a valid tree).
            let mut nodes = vec![base];
            let mut flags = vec![false];
            for k in 1..links {
                nodes.push(base + k);
                flags.push(true);
            }
            nodes.push(0);
            flags.push(false);
            specs.push(ChannelSpec::new(nodes, lens[..links].to_vec(), &flags));
        }
        RoutingPlan::tree(specs)
    })
}

fn physics(q: f64) -> SimPhysics {
    SimPhysics {
        swap_success: q,
        attenuation: 1e-4,
        fusion_success: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn analytic_rate_is_a_probability(plan in arb_tree_plan(), q in 0.0f64..=1.0) {
        let r = plan.analytic_rate(q, 1e-4, None);
        prop_assert!((0.0..=1.0).contains(&r), "rate {r}");
    }

    #[test]
    fn monte_carlo_agrees_with_analytic(plan in arb_tree_plan()) {
        let mut sim = Simulator::new(plan, physics(0.9), 99);
        let analytic = sim.analytic_rate();
        let stats = sim.run_slots(25_000);
        if analytic > 1e-4 {
            // Enough signal to test; z = 5 keeps the flake rate negligible
            // across the sampled cases.
            prop_assert!(
                stats.estimate().wilson_interval(5.0).contains(analytic),
                "MC {} vs analytic {analytic}",
                stats.estimate().point()
            );
        } else {
            // Tiny rates: just require few successes.
            prop_assert!(stats.successes <= 25 + (25_000.0 * analytic * 10.0) as u64);
        }
    }

    #[test]
    fn rate_decreases_when_q_drops(plan in arb_tree_plan()) {
        let hi = plan.analytic_rate(0.95, 1e-4, None);
        let lo = plan.analytic_rate(0.5, 1e-4, None);
        // Equal only when no channel swaps (all single-link).
        prop_assert!(lo <= hi + 1e-15);
    }

    #[test]
    fn rate_decreases_with_attenuation(plan in arb_tree_plan()) {
        let clear = plan.analytic_rate(0.9, 1e-5, None);
        let lossy = plan.analytic_rate(0.9, 1e-3, None);
        prop_assert!(lossy <= clear + 1e-15);
    }

    #[test]
    fn qubit_demand_is_even_and_bounded(plan in arb_tree_plan()) {
        let demand = plan.qubit_demand();
        let total_interior: usize = plan
            .channels
            .iter()
            .map(|c| c.interior().len())
            .sum();
        let total_demand: u32 = demand.values().sum();
        prop_assert_eq!(total_demand as usize, 2 * total_interior);
        for (_, d) in demand {
            prop_assert_eq!(d % 2, 0);
        }
    }

    #[test]
    fn deterministic_simulation(plan in arb_tree_plan(), seed in 0u64..1000) {
        let a = Simulator::new(plan.clone(), physics(0.8), seed).run_slots(500);
        let b = Simulator::new(plan, physics(0.8), seed).run_slots(500);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn users_are_the_non_switch_endpoints(plan in arb_tree_plan()) {
        let users = plan.users();
        prop_assert!(users.contains(&0), "hub user always present");
        // Sorted and deduplicated.
        for w in users.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}
