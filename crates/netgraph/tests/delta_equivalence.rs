//! Differential battery for the delta engine: over arbitrary
//! topologies and arbitrary interleaved delta sequences, an in-place
//! [`dijkstra_repair_into`] must leave the workspace **bitwise
//! identical** — distances, predecessors, reachability — to a fresh
//! [`dijkstra_into`] under the post-delta configuration, on both the
//! `Graph` adjacency and the frozen [`CsrGraph`] arena, with and
//! without a [`SearchMask`] overlay.
//!
//! Worsening steps (block a relay, block an edge) go through the
//! repair; improving steps (unblock) model what the cache layer does —
//! full recompute — and keep the sequence honest: a repair later in
//! the sequence starts from recomputed state, exactly like production.

use proptest::prelude::*;
use qnet_graph::{
    dijkstra_csr_into, dijkstra_into, dijkstra_masked_into, dijkstra_repair_into, CsrGraph,
    DeltaClassifier, DijkstraConfig, DijkstraWorkspace, EdgeId, EdgeRef, Graph, NodeId,
    RepairScratch, SearchMask, SsspDelta,
};

/// A random undirected weighted graph: `n` nodes, edge list with weights.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph<(), f64>> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.01f64..10.0);
        proptest::collection::vec(edge, 0..=max_edges).prop_map(move |edges| {
            let mut g: Graph<(), f64> = Graph::new();
            for _ in 0..n {
                g.add_node(());
            }
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), w);
                }
            }
            g
        })
    })
}

/// One step of a delta sequence: `(kind, target)` with kinds
/// 0 = block node, 1 = block edge, 2 = unblock node, 3 = unblock edge.
fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<(u8, usize)>> {
    proptest::collection::vec((0u8..4, 0usize..64), 1..=max_len)
}

/// The live state a sequence mutates: which vertices may relay and
/// which edges are usable.
struct Overlay {
    relay: Vec<bool>,
    edge_ok: Vec<bool>,
}

impl Overlay {
    fn fresh(g: &Graph<(), f64>) -> Self {
        Overlay {
            relay: vec![true; g.node_count()],
            edge_ok: vec![true; g.edge_count()],
        }
    }

    fn config(
        &self,
    ) -> DijkstraConfig<impl Fn(EdgeRef<'_, f64>) -> f64 + '_, impl Fn(NodeId) -> bool + '_> {
        DijkstraConfig {
            edge_cost: move |e: EdgeRef<'_, f64>| {
                if self.edge_ok[e.id.index()] {
                    *e.payload
                } else {
                    f64::INFINITY
                }
            },
            can_relay: move |v: NodeId| self.relay[v.index()],
        }
    }

    /// Applies one op; returns the worsening delta it produced, or
    /// `None` when the op improved the overlay (or was a no-op block of
    /// an already-blocked element, which still repairs cleanly).
    fn apply(&mut self, kind: u8, target: usize) -> Option<SsspDelta> {
        let mut delta = SsspDelta::new();
        match kind {
            0 => {
                let v = target % self.relay.len();
                self.relay[v] = false;
                delta.block_node(NodeId::new(v));
                Some(delta)
            }
            1 if !self.edge_ok.is_empty() => {
                let e = target % self.edge_ok.len();
                self.edge_ok[e] = false;
                delta.block_edge(EdgeId::new(e));
                Some(delta)
            }
            2 => {
                let v = target % self.relay.len();
                if !self.relay[v] {
                    self.relay[v] = true;
                    None
                } else {
                    // Unblocking an unblocked vertex changes nothing —
                    // exercised as a clean repair of the empty delta.
                    Some(delta)
                }
            }
            3 if !self.edge_ok.is_empty() => {
                let e = target % self.edge_ok.len();
                if !self.edge_ok[e] {
                    self.edge_ok[e] = true;
                    None
                } else {
                    Some(delta)
                }
            }
            _ => Some(delta), // edge op on an edgeless graph: no-op
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline property: repaired ≡ fresh after every step of an
    /// arbitrary interleaved delta sequence, on Graph and CSR views.
    #[test]
    fn repaired_workspace_is_bitwise_fresh(
        g in arb_graph(14, 44),
        src in 0usize..14,
        ops in arb_ops(10),
    ) {
        let source = NodeId::new(src % g.node_count());
        let csr = CsrGraph::from_graph(&g);
        let mut overlay = Overlay::fresh(&g);
        let mut ws = DijkstraWorkspace::new();
        let mut csr_ws = DijkstraWorkspace::new();
        let mut scratch = RepairScratch::new();
        {
            let cfg = overlay.config();
            dijkstra_into(&mut ws, &g, source, &cfg);
            dijkstra_csr_into(&mut csr_ws, &csr, &g, source, &cfg);
        }
        for &(kind, target) in &ops {
            let worsening = overlay.apply(kind, target);
            let cfg = overlay.config();
            let fresh = {
                let mut fresh_ws = DijkstraWorkspace::new();
                dijkstra_into(&mut fresh_ws, &g, source, &cfg).to_run()
            };
            match worsening {
                Some(delta) => {
                    let (view, stats) =
                        dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
                    prop_assert_eq!(view.to_run(), fresh.clone(), "graph repair diverged");
                    let (csr_view, csr_stats) =
                        dijkstra_repair_into(&mut csr_ws, &mut scratch, &csr, &g, &cfg, &delta);
                    prop_assert_eq!(csr_view.to_run(), fresh.clone(), "csr repair diverged");
                    prop_assert_eq!(stats, csr_stats, "adjacency encodings disagree on work");
                    if delta.is_empty() {
                        prop_assert!(stats.is_clean(), "empty delta must be clean");
                    }
                }
                None => {
                    // Improving delta: the cache layer recomputes; do the
                    // same so later repairs start from production state.
                    dijkstra_into(&mut ws, &g, source, &cfg);
                    dijkstra_csr_into(&mut csr_ws, &csr, &g, source, &cfg);
                }
            }
        }
        // Generation discipline survived the repairs: the workspace is
        // still a normal workspace for unrelated fresh runs.
        let other = NodeId::new((src + 1) % g.node_count());
        let cfg = overlay.config();
        let a = dijkstra_into(&mut ws, &g, other, &cfg).to_run();
        let b = {
            let mut fresh_ws = DijkstraWorkspace::new();
            dijkstra_into(&mut fresh_ws, &g, other, &cfg).to_run()
        };
        prop_assert_eq!(a, b);
    }

    /// Same battery under a masked overlay: the mask kills a static set
    /// of edges/nodes, deltas churn on top, and the repair (driven with
    /// the composed configuration) must match `dijkstra_masked_into`.
    #[test]
    fn masked_repair_matches_masked_fresh(
        g in arb_graph(12, 40),
        src in 0usize..12,
        dead_edges in proptest::collection::vec(0usize..40, 0..5),
        dead_node in 0usize..12,
        ops in arb_ops(8),
    ) {
        let source = NodeId::new(src % g.node_count());
        let mut mask = SearchMask::new();
        for e in dead_edges {
            if e < g.edge_count() {
                mask.kill_edge(EdgeId::new(e));
            }
        }
        let killed = NodeId::new(dead_node % g.node_count());
        if killed != source {
            mask.kill_node(killed);
        }
        let mut overlay = Overlay::fresh(&g);
        let mut ws = DijkstraWorkspace::new();
        let mut scratch = RepairScratch::new();
        // The composed configuration: overlay deltas on top of the mask
        // (exactly what the masked search wrappers build internally).
        macro_rules! composed {
            () => {{
                let mask = &mask;
                let overlay = &overlay;
                DijkstraConfig {
                    edge_cost: move |e: EdgeRef<'_, f64>| {
                        if mask.blocks(e.id, e.a, e.b) || !overlay.edge_ok[e.id.index()] {
                            f64::INFINITY
                        } else {
                            *e.payload
                        }
                    },
                    can_relay: move |v: NodeId| !mask.node_dead(v) && overlay.relay[v.index()],
                }
            }};
        }
        {
            let cfg = composed!();
            dijkstra_into(&mut ws, &g, source, &cfg);
        }
        for &(kind, target) in &ops {
            let worsening = overlay.apply(kind, target);
            let cfg = composed!();
            let fresh = {
                // The oracle goes through the public masked entry point,
                // composing only the overlay config with the mask.
                let mut fresh_ws = DijkstraWorkspace::new();
                dijkstra_masked_into(&mut fresh_ws, &g, source, &overlay.config(), &mask).to_run()
            };
            match worsening {
                Some(delta) => {
                    let (view, _) =
                        dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
                    prop_assert_eq!(view.to_run(), fresh, "masked repair diverged");
                }
                None => {
                    dijkstra_into(&mut ws, &g, source, &cfg);
                }
            }
        }
    }

    /// A run loaded from owned storage repairs exactly like the
    /// workspace that produced it — the cache-entry round trip.
    #[test]
    fn loaded_runs_repair_like_live_workspaces(
        g in arb_graph(12, 36),
        src in 0usize..12,
        block in 0usize..12,
    ) {
        let source = NodeId::new(src % g.node_count());
        let blocked = NodeId::new(block % g.node_count());
        let overlay = Overlay::fresh(&g);
        let mut live = DijkstraWorkspace::new();
        let stored = {
            let cfg = overlay.config();
            dijkstra_into(&mut live, &g, source, &cfg).to_run()
        };
        let mut loaded = DijkstraWorkspace::new();
        loaded.load_run(&stored);
        let mut delta = SsspDelta::new();
        delta.block_node(blocked);
        let cfg = DijkstraConfig {
            edge_cost: |e: EdgeRef<'_, f64>| *e.payload,
            can_relay: move |v: NodeId| v != blocked,
        };
        let mut scratch = RepairScratch::new();
        let (live_view, live_stats) =
            dijkstra_repair_into(&mut live, &mut scratch, &g, &g, &cfg, &delta);
        let live_run = live_view.to_run();
        let (loaded_view, loaded_stats) =
            dijkstra_repair_into(&mut loaded, &mut scratch, &g, &g, &cfg, &delta);
        prop_assert_eq!(loaded_view.to_run(), live_run, "storage round trip diverged");
        prop_assert_eq!(live_stats, loaded_stats);
    }

    /// The classifier's component pre-filter is sound: a delta in a
    /// foreign component repairs clean for every source outside it.
    #[test]
    fn cross_component_deltas_are_always_clean(
        g in arb_graph(12, 16),
        src in 0usize..12,
        block in 0usize..12,
    ) {
        let source = NodeId::new(src % g.node_count());
        let blocked = NodeId::new(block % g.node_count());
        let classifier = DeltaClassifier::new(&g);
        prop_assume!(!classifier.node_may_affect(source, blocked));
        let overlay = Overlay::fresh(&g);
        let mut ws = DijkstraWorkspace::new();
        {
            let cfg = overlay.config();
            dijkstra_into(&mut ws, &g, source, &cfg);
        }
        let mut delta = SsspDelta::new();
        delta.block_node(blocked);
        let cfg = DijkstraConfig {
            edge_cost: |e: EdgeRef<'_, f64>| *e.payload,
            can_relay: move |v: NodeId| v != blocked,
        };
        let mut scratch = RepairScratch::new();
        let (_, stats) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        prop_assert!(stats.is_clean(), "foreign-component delta did work: {stats:?}");
    }
}
