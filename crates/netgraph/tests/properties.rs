//! Property-based tests over the graph substrate.
//!
//! Random graphs are generated from proptest strategies; each property is
//! an invariant the MUERP algorithms rely on (Dijkstra optimality, MST
//! weight equality, union-find/connectivity agreement, bridge correctness).

use proptest::prelude::*;
use qnet_graph::connectivity::{bridges, connected_components, is_connected, nodes_connected};
use qnet_graph::dcmst::{degree_constrained_kruskal, exact_dcmst};
use qnet_graph::mst::{kruskal, prim};
use qnet_graph::steiner::steiner_approximation;
use qnet_graph::{
    dijkstra, dijkstra_csr_into, dijkstra_into, dijkstra_masked_adj_into, dijkstra_masked_into,
    CsrGraph, DijkstraConfig, DijkstraWorkspace, EdgeId, EdgeRef, Graph, NegLog, NodeId,
    SearchMask, UnionFind,
};

/// A random undirected weighted graph: `n` nodes, edge list with weights.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph<(), f64>> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.01f64..10.0);
        proptest::collection::vec(edge, 0..=max_edges).prop_map(move |edges| {
            let mut g: Graph<(), f64> = Graph::new();
            for _ in 0..n {
                g.add_node(());
            }
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge(NodeId::new(a), NodeId::new(b), w);
                }
            }
            g
        })
    })
}

fn w(e: EdgeRef<'_, f64>) -> f64 {
    *e.payload
}

/// Bellman-Ford oracle for Dijkstra (no relay filter).
fn bellman_ford(g: &Graph<(), f64>, source: NodeId) -> Vec<f64> {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    for _ in 0..n {
        let mut changed = false;
        for e in g.edge_refs() {
            let we = *e.payload;
            let (a, b) = (e.a.index(), e.b.index());
            if dist[a] + we < dist[b] {
                dist[b] = dist[a] + we;
                changed = true;
            }
            if dist[b] + we < dist[a] {
                dist[a] = dist[b] + we;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph(12, 40)) {
        let source = NodeId::new(0);
        let run = dijkstra(&g, source, &DijkstraConfig::all_nodes(w));
        let oracle = bellman_ford(&g, source);
        for v in g.node_ids() {
            match run.distance(v) {
                Some(d) => prop_assert!((d - oracle[v.index()]).abs() < 1e-9),
                None => prop_assert!(oracle[v.index()].is_infinite()),
            }
        }
    }

    #[test]
    fn dijkstra_paths_are_consistent(g in arb_graph(12, 40)) {
        let source = NodeId::new(0);
        let run = dijkstra(&g, source, &DijkstraConfig::all_nodes(w));
        for v in g.node_ids() {
            if let Some(p) = run.path_to(v) {
                // Path endpoints are right.
                prop_assert_eq!(p.source(), source);
                prop_assert_eq!(p.destination(), v);
                // Edge list connects the node list and the cost adds up.
                let mut total = 0.0;
                for (i, &e) in p.edges.iter().enumerate() {
                    let (a, b) = g.endpoints(e);
                    let (x, y) = (p.nodes[i], p.nodes[i + 1]);
                    prop_assert!((a == x && b == y) || (a == y && b == x));
                    total += *g.edge(e).payload;
                }
                prop_assert!((total - p.cost).abs() < 1e-9);
                // Simple path: no repeated nodes.
                let mut sorted = p.nodes.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), p.nodes.len());
            }
        }
    }

    #[test]
    fn relay_filter_paths_avoid_forbidden_interiors(g in arb_graph(12, 40), forbid in 0usize..12) {
        let source = NodeId::new(0);
        let forbidden = NodeId::new(forbid % g.node_count());
        let cfg = DijkstraConfig { edge_cost: w, can_relay: |n: NodeId| n != forbidden };
        let run = dijkstra(&g, source, &cfg);
        for v in g.node_ids() {
            if let Some(p) = run.path_to(v) {
                prop_assert!(!p.interior().contains(&forbidden));
            }
        }
    }

    #[test]
    fn kruskal_and_prim_agree_on_weight(g in arb_graph(10, 30)) {
        prop_assume!(is_connected(&g) && g.node_count() > 0);
        let k = kruskal(&g, w);
        let p = prim(&g, NodeId::new(0), w);
        prop_assert!(k.spans(g.node_count()));
        prop_assert!(p.spans(g.node_count()));
        prop_assert!((k.total_weight - p.total_weight).abs() < 1e-9);
    }

    #[test]
    fn mst_is_acyclic_and_spanning(g in arb_graph(10, 30)) {
        let t = kruskal(&g, w);
        // Edge count == nodes - components (a spanning forest).
        let (_, comps) = connected_components(&g);
        prop_assert_eq!(t.edges.len(), g.node_count() - comps);
        // Acyclic: union-find never sees a redundant union.
        let mut uf = UnionFind::new(g.node_count());
        for &e in &t.edges {
            let (a, b) = g.endpoints(e);
            prop_assert!(uf.union_nodes(a, b), "cycle in MST");
        }
    }

    #[test]
    fn union_find_agrees_with_bfs_connectivity(g in arb_graph(12, 30)) {
        let mut uf = UnionFind::new(g.node_count());
        for e in g.edge_refs() {
            uf.union_nodes(e.a, e.b);
        }
        let (labels, comps) = connected_components(&g);
        prop_assert_eq!(uf.set_count(), comps);
        for a in g.node_ids() {
            for b in g.node_ids() {
                prop_assert_eq!(
                    uf.same_set_nodes(a, b),
                    labels[a.index()] == labels[b.index()]
                );
            }
        }
    }

    #[test]
    fn bridges_disconnect_when_removed(g in arb_graph(10, 25)) {
        let (_, base) = connected_components(&g);
        for e in bridges(&g) {
            let without = g.filter_edges(|er| er.id != e);
            let (_, comps) = connected_components(&without);
            prop_assert_eq!(comps, base + 1, "removing bridge {} must split", e);
        }
    }

    #[test]
    fn non_bridges_keep_connectivity(g in arb_graph(8, 20)) {
        let (_, base) = connected_components(&g);
        let bs = bridges(&g);
        for e in g.edge_ids() {
            if !bs.contains(&e) {
                let without = g.filter_edges(|er| er.id != e);
                let (_, comps) = connected_components(&without);
                prop_assert_eq!(comps, base, "removing non-bridge {} must not split", e);
            }
        }
    }

    #[test]
    fn yen_matches_bruteforce_on_random_graphs(g in arb_graph(7, 14)) {
        use qnet_graph::ksp::k_shortest_paths;
        let (s, t) = (NodeId::new(0), NodeId::new(g.node_count() - 1));
        // Brute-force all simple paths.
        fn all_paths(
            g: &Graph<(), f64>,
            cur: NodeId,
            t: NodeId,
            visited: &mut Vec<NodeId>,
            cost: f64,
            out: &mut Vec<f64>,
        ) {
            if cur == t {
                out.push(cost);
                return;
            }
            for (next, eid) in g.neighbors(cur) {
                if !visited.contains(&next) {
                    visited.push(next);
                    all_paths(g, next, t, visited, cost + *g.edge(eid).payload, out);
                    visited.pop();
                }
            }
        }
        let mut brute = Vec::new();
        all_paths(&g, s, t, &mut vec![s], 0.0, &mut brute);
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let yen = k_shortest_paths(&g, s, t, brute.len() + 3, &DijkstraConfig::all_nodes(w));
        prop_assert_eq!(yen.len(), brute.len(), "yen must enumerate all simple paths");
        for (p, c) in yen.iter().zip(&brute) {
            prop_assert!((p.cost - c).abs() < 1e-9, "cost order mismatch");
        }
    }

    #[test]
    fn reused_workspace_matches_fresh_dijkstra(
        g1 in arb_graph(12, 40),
        g2 in arb_graph(6, 18),
        forbid in 0usize..12,
        sources in proptest::collection::vec(0usize..12, 1..6),
    ) {
        // One workspace carried across many runs, alternating between two
        // graphs of different sizes and between filtered/unfiltered
        // configurations — maximally dirty state. Every run must agree
        // bitwise with a fresh dijkstra() on distances and on path shape.
        let mut ws = DijkstraWorkspace::new();
        for (round, &s) in sources.iter().enumerate() {
            for g in [&g1, &g2] {
                let source = NodeId::new(s % g.node_count());
                let forbidden = NodeId::new((forbid + round) % g.node_count());
                let cfg = DijkstraConfig { edge_cost: w, can_relay: |n: NodeId| n != forbidden };
                let fresh = dijkstra(g, source, &cfg);
                let view = dijkstra_into(&mut ws, g, source, &cfg);
                for v in g.node_ids() {
                    prop_assert_eq!(view.distance(v), fresh.distance(v));
                    let (a, b) = (view.path_to(v), fresh.path_to(v));
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert_eq!(a.nodes, b.nodes);
                        prop_assert_eq!(a.edges, b.edges);
                        prop_assert_eq!(a.cost, b.cost);
                    }
                }
                // The materialized run is the view, verbatim.
                let run = view.to_run();
                for v in g.node_ids() {
                    prop_assert_eq!(run.distance(v), view.distance(v));
                }
            }
        }
    }

    #[test]
    fn reused_workspace_matches_fresh_yen(
        g in arb_graph(8, 20),
        warmup in arb_graph(12, 30),
        k in 1usize..6,
    ) {
        use qnet_graph::ksp::{k_shortest_paths, k_shortest_paths_in};
        let (s, t) = (NodeId::new(0), NodeId::new(g.node_count() - 1));
        let cfg = DijkstraConfig::all_nodes(w);
        // Dirty the workspace on an unrelated, larger graph first.
        let mut ws = DijkstraWorkspace::new();
        let _ = dijkstra_into(&mut ws, &warmup, NodeId::new(0), &cfg);
        let reused = k_shortest_paths_in(&mut ws, &g, s, t, k, &cfg);
        let fresh = k_shortest_paths(&g, s, t, k, &cfg);
        prop_assert_eq!(reused.len(), fresh.len());
        for (a, b) in reused.iter().zip(&fresh) {
            prop_assert_eq!(&a.nodes, &b.nodes);
            prop_assert_eq!(&a.edges, &b.edges);
            prop_assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn csr_dijkstra_matches_graph_dijkstra(
        g in arb_graph(12, 40),
        src in 0usize..12,
        forbid in 0usize..12,
    ) {
        // The CSR arena must be a faithful re-encoding of the adjacency
        // lists: same distances, same predecessors (hence bitwise-equal
        // paths), filtered or not.
        let csr = CsrGraph::from_graph(&g);
        let source = NodeId::new(src % g.node_count());
        let forbidden = NodeId::new(forbid % g.node_count());
        let cfg = DijkstraConfig { edge_cost: w, can_relay: |n: NodeId| n != forbidden };
        let mut ws1 = DijkstraWorkspace::new();
        let mut ws2 = DijkstraWorkspace::new();
        let lists = dijkstra_into(&mut ws1, &g, source, &cfg).to_run();
        let arena = dijkstra_csr_into(&mut ws2, &csr, &g, source, &cfg).to_run();
        prop_assert_eq!(lists, arena);
    }

    #[test]
    fn csr_masked_dijkstra_matches_graph_masked_dijkstra(
        g in arb_graph(12, 40),
        src in 0usize..12,
        dead_edges in proptest::collection::vec(0usize..40, 0..6),
        dead_node in 0usize..12,
    ) {
        let csr = CsrGraph::from_graph(&g);
        let source = NodeId::new(src % g.node_count());
        let mut mask = SearchMask::new();
        for e in dead_edges {
            if e < g.edge_count() {
                mask.kill_edge(EdgeId::new(e));
            }
        }
        let killed = NodeId::new(dead_node % g.node_count());
        if killed != source {
            mask.kill_node(killed);
        }
        let cfg = DijkstraConfig::all_nodes(w);
        let mut ws1 = DijkstraWorkspace::new();
        let mut ws2 = DijkstraWorkspace::new();
        let lists = dijkstra_masked_into(&mut ws1, &g, source, &cfg, &mask).to_run();
        let arena = dijkstra_masked_adj_into(&mut ws2, &csr, &g, source, &cfg, &mask).to_run();
        prop_assert_eq!(lists, arena);
    }

    #[test]
    fn csr_yen_matches_graph_yen(
        g in arb_graph(8, 20),
        k in 1usize..6,
        forbid in 0usize..8,
    ) {
        use qnet_graph::ksp::{k_shortest_paths_adj_in, k_shortest_paths_in};
        let csr = CsrGraph::from_graph(&g);
        let (s, t) = (NodeId::new(0), NodeId::new(g.node_count() - 1));
        let forbidden = NodeId::new(forbid % g.node_count());
        let cfg = DijkstraConfig { edge_cost: w, can_relay: |n: NodeId| n != forbidden };
        let mut ws1 = DijkstraWorkspace::new();
        let mut ws2 = DijkstraWorkspace::new();
        let lists = k_shortest_paths_in(&mut ws1, &g, s, t, k, &cfg);
        let arena = k_shortest_paths_adj_in(&mut ws2, &csr, &g, s, t, k, &cfg);
        prop_assert_eq!(lists, arena);
    }

    #[test]
    fn pooled_yen_is_thread_count_invariant(
        g in arb_graph(8, 20),
        k in 1usize..6,
    ) {
        use qnet_graph::ksp::{k_shortest_paths_in, k_shortest_paths_pooled_in};
        use qnet_pool::Pool;
        // The pooled Yen merge replays the sequential candidate order, so
        // the ranked list must be bitwise identical at every pool width.
        let csr = CsrGraph::from_graph(&g);
        let (s, t) = (NodeId::new(0), NodeId::new(g.node_count() - 1));
        let cfg = DijkstraConfig::all_nodes(w);
        let mut ws = DijkstraWorkspace::new();
        let sequential = k_shortest_paths_in(&mut ws, &g, s, t, k, &cfg);
        for threads in [1usize, 3] {
            let pool = Pool::with_threads(threads);
            let pooled =
                k_shortest_paths_pooled_in(&pool, &mut ws, &csr, &g, s, t, k, &cfg);
            prop_assert_eq!(&pooled, &sequential, "width {} diverged", threads);
        }
    }

    #[test]
    fn betweenness_is_normalized_and_zero_on_leaves(g in arb_graph(10, 25)) {
        use qnet_graph::centrality::betweenness;
        let c = betweenness(&g, w);
        for v in g.node_ids() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c[v.index()]));
            if g.degree(v) <= 1 {
                prop_assert!(c[v.index()].abs() < 1e-12, "leaf {v} must be zero");
            }
        }
    }

    #[test]
    fn neglog_add_is_prob_multiply(p1 in 0.001f64..1.0, p2 in 0.001f64..1.0) {
        let sum = NegLog::from_prob(p1) + NegLog::from_prob(p2);
        prop_assert!((sum.prob() - p1 * p2).abs() < 1e-9);
    }

    #[test]
    fn neglog_ordering_is_reverse_prob_ordering(p1 in 0.001f64..1.0, p2 in 0.001f64..1.0) {
        let (c1, c2) = (NegLog::from_prob(p1), NegLog::from_prob(p2));
        prop_assert_eq!(c1 < c2, p1 > p2);
    }

    #[test]
    fn steiner_tree_spans_terminals(g in arb_graph(10, 30), k in 2usize..5) {
        let terminals: Vec<NodeId> = (0..k.min(g.node_count())).map(NodeId::new).collect();
        prop_assume!(nodes_connected(&g, &terminals));
        let t = steiner_approximation(&g, &terminals, w).expect("terminals connected");
        let sub = g.filter_edges(|e| t.edges.contains(&e.id));
        prop_assert!(nodes_connected(&sub, &terminals));
        // A tree: |edges| <= |touched nodes| - 1 (acyclicity via union-find).
        let mut uf = UnionFind::new(g.node_count());
        for &e in &t.edges {
            let (a, b) = g.endpoints(e);
            prop_assert!(uf.union_nodes(a, b), "cycle in Steiner tree");
        }
    }

    #[test]
    fn dcmst_greedy_never_beats_exact(g in arb_graph(7, 15), bound in 2usize..4) {
        let greedy = degree_constrained_kruskal(&g, bound, w);
        let exact = exact_dcmst(&g, bound, w);
        if greedy.spans(g.node_count()) {
            // Greedy found a tree, so one exists; exact must find one too
            // and be at least as good.
            let exact = exact.as_ref().expect("greedy tree implies feasibility");
            prop_assert!(exact.total_weight <= greedy.total_weight + 1e-9);
        }
        // Any exact tree respects the degree bound.
        if let Some(t) = exact {
            let mut deg = vec![0usize; g.node_count()];
            for &e in &t.edges {
                let (a, b) = g.endpoints(e);
                deg[a.index()] += 1;
                deg[b.index()] += 1;
            }
            prop_assert!(deg.iter().all(|&d| d <= bound));
        }
    }
}
