//! Graph substrate for quantum-network routing.
//!
//! This crate provides the graph-theoretic foundation used by the MUERP
//! reproduction (ICDCS 2024). It is implemented from scratch — no external
//! graph library — and offers exactly the primitives the paper's algorithms
//! need:
//!
//! * [`Graph`]: an undirected multigraph with typed node/edge ids and
//!   arbitrary node/edge payloads.
//! * [`UnionFind`]: disjoint-set forest with union by rank and path
//!   compression, used by Algorithm 2/3 of the paper to maintain user
//!   connectivity.
//! * [`dijkstra`]: shortest path with pluggable edge costs and a *vertex
//!   filter*, the primitive behind the paper's Algorithm 1 (maximum
//!   entanglement-rate channel) after the `−ln` transform.
//! * [`NegLog`]: the product→sum transform that turns the paper's
//!   non-additive rate objective (Eq. 1/2) into additive path weights.
//! * [`mst`], [`dcmst`], [`steiner`]: classic-graph comparison algorithms
//!   referenced in §III-A of the paper (Steiner minimal tree,
//!   degree-constrained spanning trees used in the NP-hardness reductions).
//! * [`connectivity`]: components, bridges and articulation points; bridges
//!   are the "critical edges" the paper's Fig. 7(b) edge-removal experiment
//!   surfaces.
//! * [`mask`]: failure masks ([`SearchMask`]) that exclude dead edges and
//!   vertices from Dijkstra/Yen searches without re-densifying ids — the
//!   substrate for the survivability layer's incremental repair.
//!
//! # Example
//!
//! ```
//! use qnet_graph::{Graph, dijkstra, DijkstraConfig};
//!
//! let mut g: Graph<&str, f64> = Graph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 1.0);
//! g.add_edge(b, c, 2.0);
//! g.add_edge(a, c, 10.0);
//!
//! let run = dijkstra(&g, a, &DijkstraConfig::all_nodes(|e: qnet_graph::EdgeRef<'_, f64>| *e.payload));
//! assert_eq!(run.distance(c), Some(3.0));
//! assert_eq!(run.path_to(c).unwrap().nodes, vec![a, b, c]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centrality;
pub mod connectivity;
pub mod csr;
pub mod dcmst;
pub mod delta;
pub mod dot;
pub mod graph;
pub mod ksp;
pub mod mask;
pub mod mst;
pub mod paths;
pub mod steiner;
pub mod unionfind;
pub mod weight;

pub use csr::{Adjacency, CsrGraph};
pub use delta::{dijkstra_repair_into, DeltaClassifier, RepairScratch, RepairStats, SsspDelta};
pub use graph::{EdgeId, EdgeRef, Graph, NodeId};
pub use ksp::{
    k_shortest_paths, k_shortest_paths_adj_in, k_shortest_paths_in, k_shortest_paths_pooled_in,
};
pub use mask::{
    dijkstra_masked_adj_into, dijkstra_masked_into, k_shortest_paths_masked_adj_in,
    k_shortest_paths_masked_in, SearchMask,
};
pub use paths::{
    dijkstra, dijkstra_adj_into, dijkstra_csr_into, dijkstra_into, DijkstraConfig, DijkstraRun,
    DijkstraView, DijkstraWorkspace, Path,
};
pub use unionfind::UnionFind;
pub use weight::NegLog;
