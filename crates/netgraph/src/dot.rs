//! Graphviz DOT export.
//!
//! Renders a [`Graph`] as an undirected DOT document with caller-supplied
//! label closures — used by the examples to visualize routed entanglement
//! trees over the network (`dot -Tsvg`), and handy when debugging
//! topology generators.

use core::fmt::Write as _;

use crate::graph::{EdgeRef, Graph, NodeId};

/// Renders one node's label or attribute string.
pub type NodeFormatter<'a, N> = Box<dyn Fn(NodeId, &N) -> String + 'a>;
/// Renders one edge's label or attribute string.
pub type EdgeFormatter<'a, E> = Box<dyn Fn(EdgeRef<'_, E>) -> String + 'a>;

/// Options controlling the DOT rendering.
pub struct DotOptions<'a, N, E> {
    /// Graph name in the DOT header.
    pub name: &'a str,
    /// Label for each node (empty string for no label).
    pub node_label: NodeFormatter<'a, N>,
    /// Optional extra attributes per node, e.g. `color=red` (no braces).
    pub node_attrs: NodeFormatter<'a, N>,
    /// Label for each edge.
    pub edge_label: EdgeFormatter<'a, E>,
    /// Optional extra attributes per edge.
    pub edge_attrs: EdgeFormatter<'a, E>,
}

impl<N, E> Default for DotOptions<'_, N, E> {
    fn default() -> Self {
        DotOptions {
            name: "g",
            node_label: Box::new(|n, _| n.to_string()),
            node_attrs: Box::new(|_, _| String::new()),
            edge_label: Box::new(|_| String::new()),
            edge_attrs: Box::new(|_| String::new()),
        }
    }
}

/// Renders the graph as a DOT `graph` document.
///
/// # Example
///
/// ```
/// use qnet_graph::Graph;
/// use qnet_graph::dot::{to_dot, DotOptions};
///
/// let mut g: Graph<&str, f64> = Graph::new();
/// let a = g.add_node("alice");
/// let b = g.add_node("bob");
/// g.add_edge(a, b, 2.5);
/// let dot = to_dot(&g, &DotOptions {
///     node_label: Box::new(|_, name| name.to_string()),
///     edge_label: Box::new(|e| format!("{:.1}", e.payload)),
///     ..DotOptions::default()
/// });
/// assert!(dot.contains("n0 -- n1"));
/// assert!(dot.contains("alice"));
/// ```
pub fn to_dot<N, E>(g: &Graph<N, E>, options: &DotOptions<'_, N, E>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(options.name));
    for v in g.node_ids() {
        let label = escape((options.node_label)(v, g.node(v)));
        let attrs = (options.node_attrs)(v, g.node(v));
        let sep = if attrs.is_empty() { "" } else { ", " };
        let _ = writeln!(out, "  {v} [label=\"{label}\"{sep}{attrs}];");
    }
    for e in g.edge_refs() {
        let label = escape((options.edge_label)(e));
        let attrs = (options.edge_attrs)(e);
        let mut parts = Vec::new();
        if !label.is_empty() {
            parts.push(format!("label=\"{label}\""));
        }
        if !attrs.is_empty() {
            parts.push(attrs);
        }
        if parts.is_empty() {
            let _ = writeln!(out, "  {} -- {};", e.a, e.b);
        } else {
            let _ = writeln!(out, "  {} -- {} [{}];", e.a, e.b, parts.join(", "));
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".to_string()
    } else {
        cleaned
    }
}

fn escape(s: String) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph<&'static str, f64> {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 1.5);
        g
    }

    #[test]
    fn renders_nodes_and_edges() {
        let g = sample();
        let dot = to_dot(&g, &DotOptions::default());
        assert!(dot.starts_with("graph g {"));
        assert!(dot.contains("n0 [label=\"n0\"];"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn custom_labels_and_attrs() {
        let g = sample();
        let dot = to_dot(
            &g,
            &DotOptions {
                name: "my graph!",
                node_label: Box::new(|_, n| n.to_string()),
                node_attrs: Box::new(|_, _| "shape=box".into()),
                edge_label: Box::new(|e| format!("{}", e.payload)),
                edge_attrs: Box::new(|_| "color=red".into()),
            },
        );
        assert!(dot.contains("graph my_graph_ {"));
        assert!(dot.contains("label=\"a\", shape=box"));
        assert!(dot.contains("n0 -- n1 [label=\"1.5\", color=red];"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g: Graph<&str, f64> = Graph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(
            &g,
            &DotOptions {
                node_label: Box::new(|_, n| n.to_string()),
                ..DotOptions::default()
            },
        );
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn empty_graph() {
        let g: Graph<(), ()> = Graph::new();
        let dot = to_dot(&g, &DotOptions::default());
        assert_eq!(dot, "graph g {\n}\n");
    }
}
