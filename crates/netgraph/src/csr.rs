//! Compressed sparse row (CSR) adjacency: the cache-friendly, shareable
//! search substrate.
//!
//! [`Graph`] stores adjacency as one heap `Vec` per node — convenient
//! for incremental construction, but a pointer chase per visited vertex
//! during a search, and a structure the borrow checker cannot hand to
//! several worker threads without cloning. [`CsrGraph`] freezes that
//! adjacency into two flat arrays (structure of arrays):
//!
//! ```text
//! offsets: [o₀, o₁, …, o_n]          n+1 × u32
//! adj:     [(nbr, edge), …]          o_n entries, grouped by node
//! ```
//!
//! node `v`'s neighbors are `adj[offsets[v] .. offsets[v+1]]` — one
//! contiguous slice, no per-node allocation, and the whole structure is
//! an immutable value that any number of threads may read concurrently.
//! Neighbor order is preserved exactly from the source graph, so every
//! search that iterates neighbors in order (Dijkstra's relaxations,
//! Yen's spur searches, BFS) produces **bitwise identical** results on
//! either representation.
//!
//! The [`Adjacency`] trait abstracts over the two layouts; the search
//! engines in [`crate::paths`] and [`crate::ksp`] are generic over it,
//! so `Graph`-based entry points keep working unchanged while hot paths
//! (the channel-finder cache, the parallel multi-source batches) build a
//! `CsrGraph` once per solve and reuse it for every search.

use crate::graph::{EdgeId, Graph, NodeId};

/// Read-only neighbor access shared by [`Graph`] and [`CsrGraph`].
///
/// The contract the generic search engines rely on:
///
/// * [`order`](Adjacency::order) is the dense vertex-id space size; all
///   `(NodeId, EdgeId)` pairs index into the graph the adjacency was
///   derived from.
/// * [`neighbors_of`](Adjacency::neighbors_of) returns the incident
///   `(neighbor, edge)` pairs of a vertex **in insertion order** — the
///   order determines tie-breaking in searches, so two `Adjacency`
///   views of the same graph yield identical search results only if
///   their neighbor orders match ([`CsrGraph::from_graph`] guarantees
///   this).
pub trait Adjacency {
    /// Number of vertices in the dense id space.
    fn order(&self) -> usize;

    /// The `(neighbor, edge)` pairs incident to `n`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    fn neighbors_of(&self, n: NodeId) -> &[(NodeId, EdgeId)];
}

impl<N, E> Adjacency for Graph<N, E> {
    #[inline]
    fn order(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn neighbors_of(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        self.neighbor_slice(n)
    }
}

/// Frozen compressed-sparse-row adjacency of a [`Graph`].
///
/// Build once with [`CsrGraph::from_graph`] (O(|V| + |E|), the crate's
/// only copy of the adjacency), then run any number of searches — from
/// any number of threads — against it. The structure holds **no edge
/// payloads**: costs still come from the originating graph, which the
/// generic search entry points take alongside the adjacency.
///
/// Offsets are `u32`, capping the directed-entry count (2·|E| for an
/// undirected graph) at ~4.29 billion — far beyond any topology this
/// workspace simulates, and half the index-array footprint of `usize`
/// offsets on 64-bit hosts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` brackets node v's slice of `adj`.
    offsets: Vec<u32>,
    /// All `(neighbor, edge)` pairs, grouped by node, insertion order.
    adj: Vec<(NodeId, EdgeId)>,
}

impl CsrGraph {
    /// Freezes `g`'s adjacency, preserving per-node neighbor order.
    ///
    /// # Panics
    ///
    /// Panics if the graph has 2³² or more directed adjacency entries.
    pub fn from_graph<N, E>(g: &Graph<N, E>) -> CsrGraph {
        let n = g.node_count();
        let entries = 2 * g.edge_count();
        assert!(
            u32::try_from(entries).is_ok(),
            "graph too large for u32 CSR offsets ({entries} directed entries)"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(entries);
        offsets.push(0);
        for v in 0..n {
            adj.extend_from_slice(g.neighbor_slice(NodeId::new(v)));
            offsets.push(adj.len() as u32);
        }
        CsrGraph { offsets, adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed adjacency entries (2·edges for undirected graphs).
    #[inline]
    pub fn entry_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of incident edges of `n` (parallel edges counted each).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// The `(neighbor, edge)` pairs incident to `n`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        let i = n.index();
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Bytes of heap the two arrays occupy (capacity, not length) —
    /// surfaced by the bench report to compare against the `Vec<Vec<_>>`
    /// layout.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.adj.capacity() * std::mem::size_of::<(NodeId, EdgeId)>()
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn order(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn neighbors_of(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        self.neighbors(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph<(), f64> {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 1.0);
        g.add_edge(n[1], n[2], 2.0);
        g.add_edge(n[0], n[2], 3.0);
        g.add_edge(n[0], n[1], 4.0); // parallel edge
        g.add_edge(n[3], n[4], 5.0);
        g
    }

    #[test]
    fn mirrors_graph_adjacency_exactly() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.entry_count(), 2 * g.edge_count());
        for v in g.node_ids() {
            let from_graph: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            assert_eq!(csr.neighbors(v), from_graph.as_slice(), "node {v}");
            assert_eq!(csr.degree(v), g.degree(v));
            assert_eq!(csr.neighbors_of(v), g.neighbors_of(v));
        }
        assert_eq!(Adjacency::order(&csr), Adjacency::order(&g));
    }

    #[test]
    fn empty_and_isolated_nodes() {
        let empty: Graph<(), ()> = Graph::new();
        let csr = CsrGraph::from_graph(&empty);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.entry_count(), 0);

        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let csr = CsrGraph::from_graph(&g);
        assert!(csr.neighbors(a).is_empty());
        assert_eq!(csr.degree(a), 0);
        assert!(csr.heap_bytes() >= 2 * std::mem::size_of::<u32>());
    }

    #[test]
    fn is_plain_shareable_data() {
        fn assert_sync_send<T: Sync + Send>() {}
        assert_sync_send::<CsrGraph>();
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr, csr.clone());
    }
}
