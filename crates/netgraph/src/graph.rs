//! Undirected multigraph with typed ids and arbitrary payloads.
//!
//! The representation is an adjacency list over a flat edge arena: each edge
//! is stored once (`Edge { a, b, payload }`) and referenced from the
//! adjacency vectors of both endpoints. Node and edge ids are compact `u32`
//! indices wrapped in newtypes ([`NodeId`], [`EdgeId`]) so they cannot be
//! confused with each other or with raw integers.
//!
//! Removal is not supported in place; experiments that delete edges (the
//! paper's Fig. 7(b)) construct a filtered copy via
//! [`Graph::filter_edges`], which is simpler, cache-friendly, and keeps ids
//! meaningful for the lifetime of a graph value.

use core::fmt;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Identifier of a node within one [`Graph`].
///
/// Ids are dense indices: the `i`-th added node has id `NodeId::new(i)`.
/// Ids from one graph must not be used with another graph except for
/// deliberately aligned copies (e.g. [`Graph::filter_edges`] preserves node
/// ids).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge within one [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        EdgeId(index as u32)
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
struct Edge<E> {
    a: NodeId,
    b: NodeId,
    payload: E,
}

/// A borrowed view of one edge: its id, endpoints, and payload.
#[derive(Debug)]
pub struct EdgeRef<'g, E> {
    /// Edge id.
    pub id: EdgeId,
    /// First endpoint (the `a` passed to [`Graph::add_edge`]).
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Edge payload (weight, length, …).
    pub payload: &'g E,
}

// Manual impls: EdgeRef is always Copy (it only borrows the payload), so
// avoid the derive's implicit `E: Clone`/`E: Copy` bounds.
impl<E> Clone for EdgeRef<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for EdgeRef<'_, E> {}

impl<'g, E> EdgeRef<'g, E> {
    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n} is not an endpoint of edge {}", self.id)
        }
    }
}

/// An undirected multigraph with node payloads `N` and edge payloads `E`.
///
/// Self-loops are rejected (the quantum-internet model of the paper assumes
/// no self-loops); parallel edges are allowed, matching multi-core optical
/// fibers.
///
/// # Example
///
/// ```
/// use qnet_graph::Graph;
///
/// let mut g: Graph<(), f64> = Graph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let e = g.add_edge(a, b, 2.5);
/// assert_eq!(g.edge(e).payload, &2.5);
/// assert_eq!(g.degree(a), 1);
/// ```
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Builds a graph with `nodes` default-payload nodes and the given
    /// `(a, b, payload)` edges — the common test/bench constructor.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    ///
    /// # Example
    ///
    /// ```
    /// use qnet_graph::Graph;
    /// let g: Graph<(), f64> = Graph::from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)]);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    pub fn from_edges<I>(nodes: usize, edges: I) -> Self
    where
        N: Default,
        I: IntoIterator<Item = (usize, usize, E)>,
    {
        let mut g = Graph::with_capacity(nodes, 0);
        for _ in 0..nodes {
            g.add_node(N::default());
        }
        for (a, b, payload) in edges {
            g.add_edge(NodeId::new(a), NodeId::new(b), payload);
        }
        g
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(payload);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `a` and `b` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loop) or if either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, payload: E) -> EdgeId {
        assert!(a != b, "self-loops are not allowed (got {a} == {b})");
        assert!(
            a.index() < self.nodes.len() && b.index() < self.nodes.len(),
            "edge endpoints {a}, {b} out of range (graph has {} nodes)",
            self.nodes.len()
        );
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { a, b, payload });
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Payload of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutable payload of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// A borrowed view of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeRef<'_, E> {
        let edge = &self.edges[e.index()];
        EdgeRef {
            id: e,
            a: edge.a,
            b: edge.b,
            payload: &edge.payload,
        }
    }

    /// Mutable payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_payload_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].payload
    }

    /// Endpoints `(a, b)` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.a, edge.b)
    }

    /// Number of incident edges of node `n` (parallel edges counted each).
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Iterates over `(neighbor, edge)` pairs incident to `n`.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adjacency[n.index()].iter().copied()
    }

    /// The `(neighbor, edge)` pairs incident to `n` as one slice, in
    /// insertion order — the zero-cost form behind [`Graph::neighbors`]
    /// and the source layout [`crate::CsrGraph::from_graph`] freezes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[inline]
    pub fn neighbor_slice(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[n.index()]
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over all node payloads in insertion order.
    pub fn node_payloads(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + 'static {
        (0..self.edges.len()).map(EdgeId::new)
    }

    /// Iterates over borrowed views of all edges in insertion order.
    pub fn edge_refs(&self) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.edges.iter().enumerate().map(|(i, e)| EdgeRef {
            id: EdgeId::new(i),
            a: e.a,
            b: e.b,
            payload: &e.payload,
        })
    }

    /// Returns some edge between `a` and `b`, if one exists.
    ///
    /// With parallel edges present, which one is returned is unspecified
    /// (the first inserted).
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adjacency[a.index()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, e)| *e)
    }

    /// Returns `true` when at least one edge connects `a` and `b`.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.find_edge(a, b).is_some()
    }

    /// Builds a copy of this graph keeping only edges for which `keep`
    /// returns `true`. Node ids are preserved; edge ids are re-assigned
    /// densely in the original insertion order.
    pub fn filter_edges(&self, mut keep: impl FnMut(EdgeRef<'_, E>) -> bool) -> Graph<N, E>
    where
        N: Clone,
        E: Clone,
    {
        let mut out = Graph::with_capacity(self.node_count(), self.edge_count());
        for payload in &self.nodes {
            out.add_node(payload.clone());
        }
        for e in self.edge_refs() {
            if keep(e) {
                out.add_edge(e.a, e.b, e.payload.clone());
            }
        }
        out
    }

    /// Transforms every edge payload, preserving node and edge ids.
    pub fn map_edges<F, E2>(&self, mut f: F) -> Graph<N, E2>
    where
        N: Clone,
        F: FnMut(EdgeRef<'_, E>) -> E2,
    {
        let mut out = Graph::with_capacity(self.node_count(), self.edge_count());
        for payload in &self.nodes {
            out.add_node(payload.clone());
        }
        for e in self.edge_refs() {
            let p = f(e);
            out.add_edge(e.a, e.b, p);
        }
        out
    }

    /// Sum of degrees divided by node count — the average degree the
    /// topology generators target (the paper's parameter `D`).
    pub fn average_degree(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.nodes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph<&'static str, f64>, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let ab = g.add_edge(a, b, 1.0);
        let bc = g.add_edge(b, c, 2.0);
        let ca = g.add_edge(c, a, 3.0);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (g, [a, b, c], [ab, bc, ca]) = triangle();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(ab.index(), 0);
        assert_eq!(bc.index(), 1);
        assert_eq!(ca.index(), 2);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let (g, [a, b, _c], [ab, _, _]) = triangle();
        assert!(g.neighbors(a).any(|(n, e)| n == b && e == ab));
        assert!(g.neighbors(b).any(|(n, e)| n == a && e == ab));
    }

    #[test]
    fn degree_counts_parallel_edges() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
    }

    #[test]
    fn edge_ref_other_endpoint() {
        let (g, [a, b, _], [ab, _, _]) = triangle();
        let e = g.edge(ab);
        assert_eq!(e.other(a), b);
        assert_eq!(e.other(b), a);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_ref_other_rejects_non_endpoint() {
        let (g, [_, _, c], [ab, _, _]) = triangle();
        g.edge(ab).other(c);
    }

    #[test]
    fn find_edge_both_directions() {
        let (g, [a, b, c], [ab, _, _]) = triangle();
        assert_eq!(g.find_edge(a, b), Some(ab));
        assert_eq!(g.find_edge(b, a), Some(ab));
        assert!(g.contains_edge(c, a));
        let mut g2: Graph<(), ()> = Graph::new();
        let x = g2.add_node(());
        let y = g2.add_node(());
        assert_eq!(g2.find_edge(x, y), None);
    }

    #[test]
    fn filter_edges_preserves_node_ids() {
        let (g, [a, b, c], _) = triangle();
        let filtered = g.filter_edges(|e| *e.payload < 2.5);
        assert_eq!(filtered.node_count(), 3);
        assert_eq!(filtered.edge_count(), 2);
        assert!(filtered.contains_edge(a, b));
        assert!(filtered.contains_edge(b, c));
        assert!(!filtered.contains_edge(c, a));
        assert_eq!(filtered.node(a), &"a");
    }

    #[test]
    fn map_edges_transforms_payloads() {
        let (g, [a, b, _], _) = triangle();
        let doubled = g.map_edges(|e| *e.payload * 2.0);
        let e = doubled.find_edge(a, b).unwrap();
        assert_eq!(doubled.edge(e).payload, &2.0);
        assert_eq!(doubled.edge_count(), g.edge_count());
    }

    #[test]
    fn average_degree_matches_handshake_lemma() {
        let (g, _, _) = triangle();
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
        let empty: Graph<(), ()> = Graph::new();
        assert_eq!(empty.average_degree(), 0.0);
    }

    #[test]
    fn from_edges_constructor() {
        let g: Graph<(), f64> = Graph::from_edges(4, [(0, 1, 1.0), (2, 3, 2.0)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.contains_edge(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_bad_endpoint() {
        let _: Graph<(), ()> = Graph::from_edges(2, [(0, 5, ())]);
    }

    #[test]
    fn display_and_debug_ids() {
        assert_eq!(format!("{}", NodeId::new(3)), "n3");
        assert_eq!(format!("{:?}", EdgeId::new(7)), "e7");
    }
}
