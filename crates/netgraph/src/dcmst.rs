//! Degree-constrained spanning trees (DCST / DCMST).
//!
//! The paper's hardness results (Theorems 1 and 2) reduce from the
//! degree-constrained spanning tree problem (feasibility, NP-complete) and
//! the degree-constrained *minimum* spanning tree problem (optimization,
//! NP-hard). This module provides:
//!
//! * [`degree_constrained_kruskal`]: the natural greedy heuristic that
//!   mirrors how MUERP's capacity constraint interacts with Kruskal-style
//!   selection;
//! * [`exact_dcmst`]: exhaustive search over all spanning trees (Prüfer
//!   enumeration on ≤ 9 nodes), used by tests to certify the heuristic is
//!   *not* always optimal — an empirical witness of the NP-hardness that
//!   motivates the paper's heuristics.

use crate::graph::{EdgeId, EdgeRef, Graph};
use crate::mst::SpanningTree;
use crate::unionfind::UnionFind;

/// Greedy Kruskal that skips any edge whose inclusion would push an
/// endpoint above `max_degree`.
///
/// Returns a spanning tree respecting the degree bound when the greedy
/// order happens to find one; like all polynomial heuristics for this
/// NP-complete problem it may return a partial forest even when a
/// degree-bounded spanning tree exists.
pub fn degree_constrained_kruskal<N, E, F>(
    g: &Graph<N, E>,
    max_degree: usize,
    weight: F,
) -> SpanningTree
where
    F: Fn(EdgeRef<'_, E>) -> f64,
{
    let mut order: Vec<(f64, EdgeId)> = g.edge_refs().map(|e| (weight(e), e.id)).collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("weights are not NaN"));
    let mut uf = UnionFind::new(g.node_count());
    let mut deg = vec![0usize; g.node_count()];
    let mut edges = Vec::new();
    let mut total_weight = 0.0;
    for (w, eid) in order {
        let (a, b) = g.endpoints(eid);
        if deg[a.index()] >= max_degree || deg[b.index()] >= max_degree {
            continue;
        }
        if uf.union_nodes(a, b) {
            deg[a.index()] += 1;
            deg[b.index()] += 1;
            edges.push(eid);
            total_weight += w;
        }
    }
    SpanningTree {
        edges,
        total_weight,
    }
}

/// Exhaustive minimum degree-constrained spanning tree via Prüfer-sequence
/// enumeration of all labeled trees on `n` nodes, filtered to trees whose
/// edges exist in `g` and whose degrees respect `max_degree`.
///
/// Returns `None` when no degree-bounded spanning tree exists.
///
/// # Panics
///
/// Panics when `g.node_count() > 9` (the enumeration is `n^(n-2)`; nine
/// nodes is 4.8M trees, the sensible ceiling for a test oracle).
pub fn exact_dcmst<N, E, F>(g: &Graph<N, E>, max_degree: usize, weight: F) -> Option<SpanningTree>
where
    F: Fn(EdgeRef<'_, E>) -> f64,
{
    let n = g.node_count();
    assert!(n <= 9, "exact_dcmst is an oracle for ≤ 9 nodes, got {n}");
    if n == 0 {
        return Some(SpanningTree {
            edges: Vec::new(),
            total_weight: 0.0,
        });
    }
    if n == 1 {
        return Some(SpanningTree {
            edges: Vec::new(),
            total_weight: 0.0,
        });
    }

    // Cheapest edge between each unordered node pair (parallel-edge aware).
    let mut best_edge = vec![vec![None::<(f64, EdgeId)>; n]; n];
    for e in g.edge_refs() {
        let w = weight(e);
        let (i, j) = (e.a.index(), e.b.index());
        let slot = &mut best_edge[i.min(j)][i.max(j)];
        if slot.is_none_or(|(bw, _)| w < bw) {
            *slot = Some((w, e.id));
        }
    }

    let mut best: Option<SpanningTree> = None;
    let seq_len = n - 2;
    let mut prufer = vec![0usize; seq_len];
    loop {
        if let Some(t) = tree_from_prufer(&prufer, n, max_degree, &best_edge) {
            if best
                .as_ref()
                .is_none_or(|b| t.total_weight < b.total_weight)
            {
                best = Some(t);
            }
        }
        // Next sequence in base-n counting order.
        let mut i = 0;
        loop {
            if i == seq_len {
                return best;
            }
            prufer[i] += 1;
            if prufer[i] < n {
                break;
            }
            prufer[i] = 0;
            i += 1;
        }
        if seq_len == 0 {
            // n == 2: a single (empty) Prüfer sequence.
            return best;
        }
    }
}

/// Decodes one Prüfer sequence into a tree, returning it only when every
/// tree edge exists in the graph and the degree bound holds.
fn tree_from_prufer(
    prufer: &[usize],
    n: usize,
    max_degree: usize,
    best_edge: &[Vec<Option<(f64, EdgeId)>>],
) -> Option<SpanningTree> {
    let mut degree = vec![1usize; n];
    for &p in prufer {
        degree[p] += 1;
    }
    if degree.iter().any(|&d| d > max_degree) {
        return None;
    }

    let mut deg = degree.clone();
    let mut edges = Vec::with_capacity(n - 1);
    let mut total_weight = 0.0;
    let add = |a: usize, b: usize, edges: &mut Vec<EdgeId>, total: &mut f64| -> bool {
        match best_edge[a.min(b)][a.max(b)] {
            Some((w, eid)) => {
                edges.push(eid);
                *total += w;
                true
            }
            None => false,
        }
    };

    // Standard O(n^2) decode — fine for n ≤ 9.
    let mut used = vec![false; n];
    for &p in prufer {
        let leaf = (0..n)
            .find(|&v| !used[v] && deg[v] == 1)
            .expect("valid Prüfer");
        used[leaf] = true;
        deg[leaf] -= 1;
        deg[p] -= 1;
        if !add(leaf, p, &mut edges, &mut total_weight) {
            return None;
        }
    }
    let remaining: Vec<usize> = (0..n).filter(|&v| !used[v] && deg[v] == 1).collect();
    debug_assert_eq!(remaining.len(), 2);
    if !add(remaining[0], remaining[1], &mut edges, &mut total_weight) {
        return None;
    }
    Some(SpanningTree {
        edges,
        total_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::kruskal;

    fn weight(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// Star K_{1,4} plus an expensive outer cycle: with degree bound 2 the
    /// star center cannot serve everyone.
    fn star_with_ring() -> Graph<(), f64> {
        let mut g = Graph::new();
        let hub = g.add_node(());
        let leaves: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for &l in &leaves {
            g.add_edge(hub, l, 1.0);
        }
        for w in leaves.windows(2) {
            g.add_edge(w[0], w[1], 10.0);
        }
        g
    }

    #[test]
    fn unbounded_degree_reduces_to_mst() {
        let g = star_with_ring();
        let dc = degree_constrained_kruskal(&g, usize::MAX, weight);
        let mst = kruskal(&g, weight);
        assert_eq!(dc.total_weight, mst.total_weight);
        assert!(dc.spans(g.node_count()));
    }

    #[test]
    fn degree_bound_forces_expensive_edges() {
        let g = star_with_ring();
        let dc = degree_constrained_kruskal(&g, 2, weight);
        assert!(dc.spans(g.node_count()), "greedy succeeds here");
        // Hub degree ≤ 2 means at least two ring edges are needed.
        assert!(dc.total_weight >= 2.0 + 2.0 * 10.0 - 1.0);
        let exact = exact_dcmst(&g, 2, weight).unwrap();
        assert!(exact.total_weight <= dc.total_weight);
        assert_eq!(exact.total_weight, 22.0, "2 hub edges + 2 ring edges");
    }

    #[test]
    fn infeasible_degree_bound() {
        // A pure star with bound 1 cannot be spanned (hub needs degree 4).
        let mut g: Graph<(), f64> = Graph::new();
        let hub = g.add_node(());
        for _ in 0..4 {
            let l = g.add_node(());
            g.add_edge(hub, l, 1.0);
        }
        assert!(exact_dcmst(&g, 1, weight).is_none());
        let greedy = degree_constrained_kruskal(&g, 1, weight);
        assert!(!greedy.spans(g.node_count()));
    }

    #[test]
    fn exact_matches_mst_when_unconstrained() {
        let g = star_with_ring();
        let exact = exact_dcmst(&g, g.node_count(), weight).unwrap();
        let mst = kruskal(&g, weight);
        assert!((exact.total_weight - mst.total_weight).abs() < 1e-9);
    }

    #[test]
    fn exact_handles_two_nodes() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 7.0);
        let t = exact_dcmst(&g, 1, weight).unwrap();
        assert_eq!(t.total_weight, 7.0);
        assert_eq!(t.edges.len(), 1);
    }

    #[test]
    fn exact_respects_missing_edges() {
        // Path graph: the only spanning tree is the path itself.
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        let t = exact_dcmst(&g, 2, weight).unwrap();
        assert_eq!(t.edges.len(), 3);
        assert_eq!(t.total_weight, 3.0);
        assert!(exact_dcmst(&g, 1, weight).is_none(), "path needs degree 2");
    }

    #[test]
    fn greedy_is_suboptimal_on_adversarial_instance() {
        // Greedy picks the two cheap hub edges first and is then forced
        // into expensive repairs; the exact answer avoids one of them.
        // Greedy takes h-a then h-b, saturating h; node c is then only
        // reachable over the 100-weight edge. The optimum takes h-c early
        // and routes b through a instead: {h-a, h-c, a-b} = 3.5.
        let mut g: Graph<(), f64> = Graph::new();
        let h = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(h, a, 1.0);
        g.add_edge(h, b, 1.1);
        g.add_edge(h, c, 1.2);
        g.add_edge(a, b, 1.3);
        g.add_edge(a, c, 100.0);
        let greedy = degree_constrained_kruskal(&g, 2, weight);
        let exact = exact_dcmst(&g, 2, weight).unwrap();
        assert!(greedy.spans(4));
        assert!((greedy.total_weight - 102.1).abs() < 1e-9);
        assert!((exact.total_weight - 3.5).abs() < 1e-9);
        assert!(
            exact.total_weight < greedy.total_weight,
            "exact {} must beat greedy {}",
            exact.total_weight,
            greedy.total_weight
        );
    }
}
