//! Disjoint-set forest (union-find) with union by rank and path compression.
//!
//! The paper's Algorithms 2 and 3 maintain "unions" of quantum users that
//! are already connected by selected channels; this is the data structure
//! they reference (\[46\] in the paper). Amortized cost per operation is
//! `O(α(n))` (inverse Ackermann).

use crate::graph::NodeId;

/// Disjoint-set forest over dense indices `0..n`.
///
/// # Example
///
/// ```
/// use qnet_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.same_set(0, 2));
/// assert!(uf.union(1, 2));
/// assert!(uf.same_set(0, 3));
/// assert_eq!(uf.set_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression: point every node on the walk at the root.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`. Returns `true` when they were
    /// previously disjoint (i.e. the union did something).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            core::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            core::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            core::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Convenience: [`UnionFind::find`] keyed by [`NodeId`].
    pub fn find_node(&mut self, n: NodeId) -> usize {
        self.find(n.index())
    }

    /// Convenience: [`UnionFind::union`] keyed by [`NodeId`].
    pub fn union_nodes(&mut self, a: NodeId, b: NodeId) -> bool {
        self.union(a.index(), b.index())
    }

    /// Convenience: [`UnionFind::same_set`] keyed by [`NodeId`].
    pub fn same_set_nodes(&mut self, a: NodeId, b: NodeId) -> bool {
        self.same_set(a.index(), b.index())
    }

    /// `true` when every element queried through `items` lies in one set.
    ///
    /// Returns `true` for an empty or single-element iterator.
    pub fn all_same_set(&mut self, items: impl IntoIterator<Item = usize>) -> bool {
        let mut iter = items.into_iter();
        let Some(first) = iter.next() else {
            return true;
        };
        let root = self.find(first);
        iter.all(|x| self.find(x) == root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert!(!uf.same_set(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "second union of same pair is a no-op");
        assert_eq!(uf.set_count(), 4);
        assert!(uf.union(3, 4));
        assert!(uf.union(0, 4));
        assert_eq!(uf.set_count(), 2);
        assert!(uf.same_set(1, 3));
        assert!(!uf.same_set(2, 3));
    }

    #[test]
    fn transitive_closure() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same_set(0, 99));
    }

    #[test]
    fn all_same_set_edge_cases() {
        let mut uf = UnionFind::new(4);
        assert!(uf.all_same_set([]));
        assert!(uf.all_same_set([2]));
        assert!(!uf.all_same_set([0, 1]));
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.all_same_set([0, 1, 2]));
        assert!(!uf.all_same_set([0, 1, 2, 3]));
    }

    #[test]
    fn node_id_helpers() {
        let mut uf = UnionFind::new(3);
        let (a, b) = (NodeId::new(0), NodeId::new(2));
        assert!(uf.union_nodes(a, b));
        assert!(uf.same_set_nodes(a, b));
        assert_eq!(uf.find_node(a), uf.find_node(b));
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
    }
}
