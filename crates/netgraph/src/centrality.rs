//! Betweenness centrality (Brandes' algorithm, weighted).
//!
//! The paper's Fig. 7(b) discussion attributes performance collapse to a
//! few "critical" *edges*; the node-side counterpart — which switches sit
//! on most cheapest channels — predicts where qubit capacity runs out
//! first. [`betweenness`] implements Brandes' exact algorithm over
//! non-negative edge weights (Dijkstra-based), counting shortest-path
//! multiplicities.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{EdgeRef, Graph, NodeId};

#[derive(PartialEq)]
struct Entry {
    dist: f64,
    node: NodeId,
}
impl Eq for Entry {}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are not NaN")
            .then_with(|| self.node.index().cmp(&other.node.index()))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Exact betweenness centrality of every node under the given edge
/// weight (non-negative), normalized by the number of ordered pairs
/// `(n−1)(n−2)` so values lie in `[0, 1]` for simple graphs.
///
/// Endpoints do not count toward their own paths (standard convention).
///
/// # Panics
///
/// Panics if `weight` yields a negative or NaN value.
pub fn betweenness<N, E, F>(g: &Graph<N, E>, weight: F) -> Vec<f64>
where
    F: Fn(EdgeRef<'_, E>) -> f64,
{
    let n = g.node_count();
    let mut centrality = vec![0.0f64; n];
    if n < 3 {
        return centrality;
    }

    for s in g.node_ids() {
        // Dijkstra with shortest-path counting.
        let mut dist = vec![f64::INFINITY; n];
        let mut sigma = vec![0.0f64; n]; // number of shortest paths
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n); // settle order
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::new();
        dist[s.index()] = 0.0;
        sigma[s.index()] = 1.0;
        heap.push(Entry { dist: 0.0, node: s });

        while let Some(Entry { dist: d, node: v }) = heap.pop() {
            if settled[v.index()] {
                continue;
            }
            settled[v.index()] = true;
            order.push(v);
            for (u, eid) in g.neighbors(v) {
                let w = weight(g.edge(eid));
                assert!(w >= 0.0 && !w.is_nan(), "weights must be non-negative");
                let nd = d + w;
                let rel = nd - dist[u.index()];
                if rel < -1e-12 {
                    dist[u.index()] = nd;
                    sigma[u.index()] = sigma[v.index()];
                    preds[u.index()].clear();
                    preds[u.index()].push(v);
                    heap.push(Entry { dist: nd, node: u });
                } else if rel.abs() <= 1e-12 && !settled[u.index()] {
                    // Another shortest path through v.
                    sigma[u.index()] += sigma[v.index()];
                    preds[u.index()].push(v);
                } else if rel < 0.0 {
                    // Strictly better within tolerance handling above.
                    dist[u.index()] = nd;
                    sigma[u.index()] = sigma[v.index()];
                    preds[u.index()].clear();
                    preds[u.index()].push(v);
                    heap.push(Entry { dist: nd, node: u });
                }
            }
        }

        // Accumulation (reverse settle order).
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            for &p in &preds[v.index()] {
                let share = sigma[p.index()] / sigma[v.index()] * (1.0 + delta[v.index()]);
                delta[p.index()] += share;
            }
            if v != s {
                centrality[v.index()] += delta[v.index()];
            }
        }
    }

    let norm = ((n - 1) * (n - 2)) as f64;
    for c in &mut centrality {
        *c /= norm;
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    #[test]
    fn path_graph_center_dominates() {
        // 0 - 1 - 2 - 3 - 4: node 2 lies on the most pairs.
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<NodeId> = (0..5).map(|_| g.add_node(())).collect();
        for pair in ids.windows(2) {
            g.add_edge(pair[0], pair[1], 1.0);
        }
        let c = betweenness(&g, w);
        assert!(c[2] > c[1]);
        assert!(c[1] > c[0]);
        assert_eq!(c[0], 0.0);
        assert!((c[1] - c[3]).abs() < 1e-12, "symmetry");
        // Node 2 carries pairs (0,3),(0,4),(1,3),(1,4) in both directions:
        // 8 ordered pairs / (4·3) = 2/3.
        assert!((c[2] - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn star_hub_has_maximal_centrality() {
        let mut g: Graph<(), f64> = Graph::new();
        let hub = g.add_node(());
        for _ in 0..4 {
            let leaf = g.add_node(());
            g.add_edge(hub, leaf, 1.0);
        }
        let c = betweenness(&g, w);
        assert!(
            (c[hub.index()] - 1.0).abs() < 1e-12,
            "hub carries all pairs"
        );
        for &leaf_score in &c[1..5] {
            assert_eq!(leaf_score, 0.0);
        }
    }

    #[test]
    fn cycle_is_uniform() {
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        for i in 0..6 {
            g.add_edge(ids[i], ids[(i + 1) % 6], 1.0);
        }
        let c = betweenness(&g, w);
        for v in &c {
            assert!((v - c[0]).abs() < 1e-9, "cycle symmetry: {c:?}");
        }
        assert!(c[0] > 0.0);
    }

    #[test]
    fn weights_redirect_centrality() {
        // Square 0-1-2-3-0; heavy edges 1-2 and 2-3 push all traffic the
        // other way around, zeroing node 2's centrality.
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[1], ids[2], 10.0);
        g.add_edge(ids[2], ids[3], 10.0);
        g.add_edge(ids[3], ids[0], 1.0);
        let c = betweenness(&g, w);
        // 1↔3 routes via 0 (cost 2 vs 20); 0↔2 splits evenly over 1 and
        // 3 (cost 11 both ways); nothing routes through 2.
        assert_eq!(c[2], 0.0);
        assert!((c[0] - 2.0 / 6.0).abs() < 1e-12, "{c:?}");
        assert!((c[1] - 1.0 / 6.0).abs() < 1e-12, "{c:?}");
        assert!((c[3] - 1.0 / 6.0).abs() < 1e-12, "{c:?}");
    }

    #[test]
    fn shortest_path_multiplicities_are_split() {
        // Two equal-length routes 0→3 via 1 or 2: each carries half.
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[1], ids[3], 1.0);
        g.add_edge(ids[0], ids[2], 1.0);
        g.add_edge(ids[2], ids[3], 1.0);
        let c = betweenness(&g, w);
        assert!((c[1] - c[2]).abs() < 1e-12);
        // Each middle node carries ½ of the 2 ordered pairs (0,3),(3,0)
        // → 1.0 / ((n−1)(n−2)) = 1/6.
        assert!((c[1] - 1.0 / 6.0).abs() < 1e-12, "{c:?}");
    }

    #[test]
    fn tiny_graphs_are_zero() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        assert_eq!(betweenness(&g, w), vec![0.0, 0.0]);
    }
}
