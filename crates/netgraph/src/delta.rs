//! Incremental SSSP repair: patch a completed Dijkstra run in place
//! after a *worsening* delta instead of re-running from scratch.
//!
//! A worsening delta removes options: an edge becomes unusable
//! ([`SsspDelta::block_edge`]) or a vertex loses its interior-relay
//! permission ([`SsspDelta::block_node`] — in MUERP terms, a switch
//! dropped below two free qubits). Under such a delta every distance is
//! monotonically non-decreasing, which makes exact in-place repair
//! tractable:
//!
//! 1. **Mark** — walk each node's stored predecessor chain; a node is
//!    *affected* iff its chain crosses a blocked edge or relays through
//!    a blocked (non-source) vertex. Chains are memoized, so marking is
//!    `O(|V|)`.
//! 2. **Clear** — affected slots are reset to the unreached state
//!    (`∞` distance, no predecessor); unaffected slots keep their
//!    distances and predecessors bitwise intact.
//! 3. **Re-run** — unaffected nodes bordering the affected region are
//!    re-seeded into the heap at their exact final distances, and the
//!    *standard* relaxation loop (the same code shape as
//!    [`dijkstra_adj_into`](crate::paths::dijkstra_adj_into)) runs to
//!    completion over the affected region only.
//!
//! The result is not merely equal-cost: it is **bitwise identical** to
//! a from-scratch run under the post-delta configuration — same
//! distances, same predecessor choices under floating-point cost ties.
//! That holds because (a) heap tie-breaking is a pure function of
//! `(cost, node index)`, (b) every neighbor that offers a relaxation
//! into the affected region in the fresh run either is affected itself
//! or is a boundary seed popping at the same final distance, and (c)
//! offers therefore arrive with identical values in an identical
//! relative order. `tests/delta_equivalence.rs` pits the repair against
//! fresh runs over arbitrary topologies, delta sequences, and masked
//! overlays.
//!
//! *Improving* deltas (a blocked element coming back) can flip
//! predecessor choices on exact cost ties in ways no local patch can
//! reproduce bitwise, so this module deliberately refuses to handle
//! them: callers classify those as full recomputes (see
//! `ChannelFinderCache` in `muerp-core`).
//!
//! [`DeltaClassifier`] is the graph-level pre-filter: connected
//! components and bridges from [`crate::connectivity`] bound which
//! sources a delta can possibly affect before any per-run work.

use crate::connectivity::{bridges, connected_components};
use crate::csr::Adjacency;
use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::paths::{DijkstraConfig, DijkstraView, DijkstraWorkspace, HeapEntry};

/// A batch of *worsening* changes to apply against a completed run:
/// edges that became unusable and vertices that lost relay permission.
///
/// Deltas are deduplicated on insertion, so repeatedly reporting the
/// same blocked element composes to a single block.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SsspDelta {
    blocked_nodes: Vec<NodeId>,
    blocked_edges: Vec<EdgeId>,
}

impl SsspDelta {
    /// An empty delta (repairing against it is a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `v` may no longer serve as an interior relay.
    pub fn block_node(&mut self, v: NodeId) -> &mut Self {
        if !self.blocked_nodes.contains(&v) {
            self.blocked_nodes.push(v);
        }
        self
    }

    /// Records that `e` may no longer be traversed.
    pub fn block_edge(&mut self, e: EdgeId) -> &mut Self {
        if !self.blocked_edges.contains(&e) {
            self.blocked_edges.push(e);
        }
        self
    }

    /// Folds every block of `other` into this delta.
    pub fn merge(&mut self, other: &SsspDelta) {
        for &v in &other.blocked_nodes {
            self.block_node(v);
        }
        for &e in &other.blocked_edges {
            self.block_edge(e);
        }
    }

    /// `true` when nothing is blocked.
    pub fn is_empty(&self) -> bool {
        self.blocked_nodes.is_empty() && self.blocked_edges.is_empty()
    }

    /// The vertices whose relay permission was revoked.
    pub fn blocked_nodes(&self) -> &[NodeId] {
        &self.blocked_nodes
    }

    /// The edges that became unusable.
    pub fn blocked_edges(&self) -> &[EdgeId] {
        &self.blocked_edges
    }
}

/// Graph-level delta classification: connected components and bridges,
/// computed once per topology, bound which sources a delta can reach
/// before any per-run inspection.
///
/// A delta at a vertex (or edge) in a different component than a
/// source can never touch that source's shortest-path tree; a blocked
/// *bridge* conversely disconnects every source on the far side from
/// the entire subtree it carried. Both facts come straight from
/// [`crate::connectivity`].
#[derive(Clone, Debug)]
pub struct DeltaClassifier {
    component: Vec<usize>,
    component_count: usize,
    bridge: Vec<bool>,
}

impl DeltaClassifier {
    /// Analyzes `g` once: component labels plus the bridge set.
    pub fn new<N, E>(g: &Graph<N, E>) -> Self {
        let (component, component_count) = connected_components(g);
        let mut bridge = vec![false; g.edge_count()];
        for e in bridges(g) {
            bridge[e.index()] = true;
        }
        DeltaClassifier {
            component,
            component_count,
            bridge,
        }
    }

    /// Number of connected components in the analyzed graph.
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// The component label of `v`.
    pub fn component_of(&self, v: NodeId) -> usize {
        self.component[v.index()]
    }

    /// `true` when `a` and `b` share a component.
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component[a.index()] == self.component[b.index()]
    }

    /// `true` when `e` is a bridge (its loss disconnects the graph).
    pub fn is_bridge(&self, e: EdgeId) -> bool {
        self.bridge[e.index()]
    }

    /// `true` when a capacity delta at `v` can possibly affect a run
    /// rooted at `source` (structurally — same component).
    pub fn node_may_affect(&self, source: NodeId, v: NodeId) -> bool {
        self.same_component(source, v)
    }

    /// `true` when an edge delta at `e` can possibly affect a run
    /// rooted at `source`.
    pub fn edge_may_affect<N, E>(&self, g: &Graph<N, E>, source: NodeId, e: EdgeId) -> bool {
        let (a, _) = g.endpoints(e);
        self.same_component(source, a)
    }

    /// Filters `sources` down to those a delta at `v` could affect.
    pub fn affected_sources(&self, sources: &[NodeId], v: NodeId) -> Vec<NodeId> {
        sources
            .iter()
            .copied()
            .filter(|&s| self.node_may_affect(s, v))
            .collect()
    }
}

/// What one [`dijkstra_repair_into`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Vertices whose stored state the delta invalidated.
    pub affected: usize,
    /// Vertices the repair loop settled (seeds + re-reached region).
    pub resettled: u64,
    /// Successful relaxations during the repair.
    pub relaxations: u64,
}

impl RepairStats {
    /// `true` when the delta did not touch the stored tree at all.
    pub fn is_clean(&self) -> bool {
        self.affected == 0
    }
}

const UNKNOWN: u8 = 0;
const KEEP: u8 = 1;
const AFFECTED: u8 = 2;

/// Reusable buffers for [`dijkstra_repair_into`]; hold one per thread
/// or cache and repairs allocate nothing in steady state.
#[derive(Clone, Debug, Default)]
pub struct RepairScratch {
    node_blocked: Vec<bool>,
    edge_blocked: Vec<bool>,
    state: Vec<u8>,
    chain: Vec<usize>,
}

impl RepairScratch {
    /// Fresh scratch; buffers are sized lazily per repair.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, nodes: usize, edges: usize, delta: &SsspDelta) {
        self.node_blocked.clear();
        self.node_blocked.resize(nodes, false);
        self.edge_blocked.clear();
        self.edge_blocked.resize(edges, false);
        self.state.clear();
        self.state.resize(nodes, UNKNOWN);
        self.chain.clear();
        for &v in delta.blocked_nodes() {
            self.node_blocked[v.index()] = true;
        }
        for &e in delta.blocked_edges() {
            self.edge_blocked[e.index()] = true;
        }
    }
}

/// Repairs the run held in `ws` against a worsening `delta`, in place.
///
/// `ws` must hold a completed run over `adj` (same vertex count), and
/// `config` must be the **post-delta** configuration: `edge_cost`
/// returns `INFINITY` for every blocked edge and `can_relay` is `false`
/// for every blocked node (on top of whatever else it filters). The
/// repaired workspace is bitwise identical — distances *and*
/// predecessor choices — to a fresh
/// [`dijkstra_into`](crate::paths::dijkstra_into) under `config`.
///
/// Emits `graph.delta.repaired` (or `graph.delta.clean` when the delta
/// misses the stored tree entirely) through `qnet-obs`.
///
/// # Panics
///
/// Panics when `ws` holds no run sized for `adj`, or if `edge_cost`
/// produces a negative or NaN cost during the repair.
pub fn dijkstra_repair_into<'w, A, N, E, FC, FR>(
    ws: &'w mut DijkstraWorkspace,
    scratch: &mut RepairScratch,
    adj: &A,
    g: &Graph<N, E>,
    config: &DijkstraConfig<FC, FR>,
    delta: &SsspDelta,
) -> (DijkstraView<'w>, RepairStats)
where
    A: Adjacency + ?Sized,
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let n = adj.order();
    assert_eq!(
        ws.active_len, n,
        "workspace holds no run over this adjacency"
    );
    let _span = qnet_obs::span!("graph.delta.repair");
    scratch.reset(n, g.edge_count(), delta);
    let source = ws.source;
    let mut stats = RepairStats::default();

    // Phase 1 — mark: a node is affected iff its predecessor chain
    // crosses a blocked element. Each chain walk stops at the first
    // node with a known verdict and back-propagates it, so every node
    // is classified exactly once.
    scratch.state[source.index()] = KEEP;
    for i in 0..n {
        if !ws.is_current(i) || !ws.dist[i].is_finite() {
            continue;
        }
        let mut cur = i;
        let verdict = loop {
            match scratch.state[cur] {
                UNKNOWN => {}
                known => break known,
            }
            match ws.prev[cur] {
                None => break KEEP, // the source (stamped, no predecessor)
                Some((p, e)) => {
                    if scratch.edge_blocked[e.index()]
                        || (scratch.node_blocked[p.index()] && p != source)
                    {
                        scratch.state[cur] = AFFECTED;
                        break AFFECTED;
                    }
                    scratch.chain.push(cur);
                    cur = p.index();
                }
            }
        };
        scratch.state[cur] = verdict;
        for u in scratch.chain.drain(..) {
            scratch.state[u] = verdict;
        }
    }

    stats.affected = scratch.state.iter().filter(|&&s| s == AFFECTED).count();
    if stats.affected == 0 {
        qnet_obs::counter!("graph.delta.clean");
        return (DijkstraView::over(ws), stats);
    }

    // Phase 2 — clear the affected slots and seed the boundary: every
    // kept node adjacent to an affected one re-enters the heap at its
    // exact final distance (settled flag dropped so the standard loop
    // re-relaxes out of it verbatim).
    ws.heap.clear();
    for i in 0..n {
        if scratch.state[i] == AFFECTED {
            ws.dist[i] = f64::INFINITY;
            ws.prev[i] = None;
            ws.settled[i] = false;
        }
    }
    for i in 0..n {
        if scratch.state[i] != AFFECTED {
            continue;
        }
        for &(p, _) in adj.neighbors_of(NodeId::new(i)) {
            let pi = p.index();
            if scratch.state[pi] == KEEP && ws.settled[pi] {
                ws.settled[pi] = false;
                ws.heap.push(HeapEntry {
                    cost: ws.dist[pi],
                    node: p,
                });
            }
        }
    }

    // Phase 3 — the standard relaxation loop (mirrors
    // `dijkstra_adj_into` exactly) over the seeded frontier.
    let mut costs_ok = true;
    while let Some(HeapEntry { cost, node }) = ws.heap.pop() {
        if ws.settled[node.index()] {
            continue;
        }
        ws.settled[node.index()] = true;
        stats.resettled += 1;

        if node != source && !(config.can_relay)(node) {
            continue;
        }

        for &(next, eid) in adj.neighbors_of(node) {
            if ws.settled_at(next.index()) {
                continue;
            }
            let w = (config.edge_cost)(g.edge(eid));
            debug_assert!(
                w >= 0.0 && !w.is_nan(),
                "edge cost must be non-negative and not NaN, got {w} for {eid}"
            );
            costs_ok &= w >= 0.0;
            if w.is_infinite() {
                continue;
            }
            let cand = cost + w;
            if cand < ws.dist_at(next.index()) {
                ws.touch(next.index());
                ws.dist[next.index()] = cand;
                ws.prev[next.index()] = Some((node, eid));
                stats.relaxations += 1;
                ws.heap.push(HeapEntry {
                    cost: cand,
                    node: next,
                });
            }
        }
    }

    assert!(
        costs_ok,
        "edge cost must be non-negative and not NaN (repair from {source}; \
         rebuild with debug assertions to locate the offending edge)"
    );
    qnet_obs::counter!("graph.delta.repaired");
    qnet_obs::counter!("graph.delta.resettled"; stats.resettled);
    (DijkstraView::over(ws), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{dijkstra_into, DijkstraRun};

    fn cost(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// 0 -1- 1 -1- 2, plus the direct 0 -5- 2 detour.
    fn diamond() -> (Graph<(), f64>, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let ab = g.add_edge(a, b, 1.0);
        let bc = g.add_edge(b, c, 1.0);
        let ac = g.add_edge(a, c, 5.0);
        (g, [a, b, c], [ab, bc, ac])
    }

    fn fresh(
        g: &Graph<(), f64>,
        source: NodeId,
        blocked_node: Option<NodeId>,
        blocked_edge: Option<EdgeId>,
    ) -> DijkstraRun {
        let cfg = DijkstraConfig {
            edge_cost: |e: EdgeRef<'_, f64>| {
                if Some(e.id) == blocked_edge {
                    f64::INFINITY
                } else {
                    *e.payload
                }
            },
            can_relay: |v: NodeId| Some(v) != blocked_node,
        };
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, g, source, &cfg).to_run()
    }

    #[test]
    fn blocking_a_relay_reroutes_its_subtree() {
        let (g, [a, b, c], _) = diamond();
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        let mut delta = SsspDelta::new();
        delta.block_node(b);
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: |v: NodeId| v != b,
        };
        let mut scratch = RepairScratch::new();
        let (view, stats) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        assert_eq!(stats.affected, 1, "only c relayed through b");
        assert_eq!(view.to_run(), fresh(&g, a, Some(b), None));
        assert_eq!(view.distance(c), Some(5.0));
        assert_eq!(
            view.distance(b),
            Some(1.0),
            "b stays reachable as an endpoint"
        );
    }

    #[test]
    fn blocking_an_edge_reroutes_through_the_detour() {
        let (g, [a, _b, c], [_, bc, _]) = diamond();
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        let mut delta = SsspDelta::new();
        delta.block_edge(bc);
        let cfg = DijkstraConfig::all_nodes(|e: EdgeRef<'_, f64>| {
            if e.id == bc {
                f64::INFINITY
            } else {
                *e.payload
            }
        });
        let mut scratch = RepairScratch::new();
        let (view, stats) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        assert!(!stats.is_clean());
        assert_eq!(view.to_run(), fresh(&g, a, None, Some(bc)));
        assert_eq!(view.distance(c), Some(5.0));
    }

    #[test]
    fn a_miss_is_clean_and_does_no_work() {
        let (g, [a, b, _c], [_, _, ac]) = diamond();
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        // The direct a-c edge carries no shortest path; blocking it
        // leaves the stored tree untouched.
        let mut delta = SsspDelta::new();
        delta.block_edge(ac);
        let cfg = DijkstraConfig::all_nodes(|e: EdgeRef<'_, f64>| {
            if e.id == ac {
                f64::INFINITY
            } else {
                *e.payload
            }
        });
        let mut scratch = RepairScratch::new();
        let (view, stats) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        assert!(stats.is_clean());
        assert_eq!(stats.resettled, 0);
        assert_eq!(view.to_run(), fresh(&g, a, None, Some(ac)));
        let _ = b;
    }

    #[test]
    fn cutting_a_bridge_unreaches_the_far_side() {
        // a - b - c in a line: b-c is a bridge; losing it strands c.
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1.0);
        let bc = g.add_edge(b, c, 1.0);
        let classifier = DeltaClassifier::new(&g);
        assert!(classifier.is_bridge(bc));
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        let mut delta = SsspDelta::new();
        delta.block_edge(bc);
        let cfg = DijkstraConfig::all_nodes(|e: EdgeRef<'_, f64>| {
            if e.id == bc {
                f64::INFINITY
            } else {
                *e.payload
            }
        });
        let mut scratch = RepairScratch::new();
        let (view, stats) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        assert_eq!(stats.affected, 1);
        assert_eq!(view.distance(c), None);
        assert_eq!(view.to_run(), fresh(&g, a, None, Some(bc)));
    }

    #[test]
    fn repairs_compose_across_sequential_deltas() {
        let (g, [a, b, c], [ab, _, _]) = diamond();
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        let mut scratch = RepairScratch::new();
        // First delta: b stops relaying.
        let mut d1 = SsspDelta::new();
        d1.block_node(b);
        let cfg1 = DijkstraConfig {
            edge_cost: cost,
            can_relay: |v: NodeId| v != b,
        };
        dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg1, &d1);
        // Second delta on top: the a-b edge goes away entirely.
        let mut d2 = SsspDelta::new();
        d2.block_edge(ab);
        let cfg2 = DijkstraConfig {
            edge_cost: move |e: EdgeRef<'_, f64>| {
                if e.id == ab {
                    f64::INFINITY
                } else {
                    *e.payload
                }
            },
            can_relay: |v: NodeId| v != b,
        };
        let (view, _) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg2, &d2);
        let mut fresh_ws = DijkstraWorkspace::new();
        let fresh = dijkstra_into(&mut fresh_ws, &g, a, &cfg2).to_run();
        assert_eq!(view.to_run(), fresh);
        assert_eq!(
            view.distance(b),
            Some(6.0),
            "b reachable only via a-c-b now"
        );
        assert_eq!(view.distance(c), Some(5.0));
        // And the workspace is still a perfectly good workspace.
        let run = dijkstra_into(&mut ws, &g, c, &DijkstraConfig::all_nodes(cost)).to_run();
        assert_eq!(run.distance(a), Some(2.0));
    }

    #[test]
    fn merged_delta_repairs_in_one_shot() {
        let (g, [a, b, _c], [_, bc, _]) = diamond();
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        let mut delta = SsspDelta::new();
        delta.block_node(b);
        delta.block_edge(bc);
        delta.block_node(b); // deduplicated
        assert_eq!(delta.blocked_nodes().len(), 1);
        let cfg = DijkstraConfig {
            edge_cost: move |e: EdgeRef<'_, f64>| {
                if e.id == bc {
                    f64::INFINITY
                } else {
                    *e.payload
                }
            },
            can_relay: |v: NodeId| v != b,
        };
        let mut scratch = RepairScratch::new();
        let (view, _) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        let mut fresh_ws = DijkstraWorkspace::new();
        let fresh = dijkstra_into(&mut fresh_ws, &g, a, &cfg).to_run();
        assert_eq!(view.to_run(), fresh);
    }

    #[test]
    fn load_run_round_trips_through_the_workspace() {
        let (g, [a, ..], _) = diamond();
        let mut ws = DijkstraWorkspace::new();
        let run = dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost)).to_run();
        let mut other = DijkstraWorkspace::new();
        other.load_run(&run);
        assert_eq!(DijkstraView::over(&other).to_run(), run);
        // A loaded run repairs exactly like the original workspace.
        let (_, [_, b, _], _) = diamond();
        let mut delta = SsspDelta::new();
        delta.block_node(b);
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: move |v: NodeId| v != b,
        };
        let mut scratch = RepairScratch::new();
        let (view, _) = dijkstra_repair_into(&mut other, &mut scratch, &g, &g, &cfg, &delta);
        assert_eq!(view.to_run(), fresh(&g, a, Some(b), None));
    }

    #[test]
    fn classifier_separates_components_and_finds_bridges() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let ab = g.add_edge(a, b, 1.0);
        let cd = g.add_edge(c, d, 1.0);
        let classifier = DeltaClassifier::new(&g);
        assert_eq!(classifier.component_count(), 2);
        assert!(classifier.same_component(a, b));
        assert!(!classifier.same_component(a, c));
        assert!(classifier.is_bridge(ab) && classifier.is_bridge(cd));
        assert!(classifier.node_may_affect(a, b));
        assert!(!classifier.node_may_affect(a, d));
        assert!(classifier.edge_may_affect(&g, c, cd));
        assert!(!classifier.edge_may_affect(&g, a, cd));
        assert_eq!(classifier.affected_sources(&[a, b, c, d], b), vec![a, b]);
    }

    #[test]
    fn equal_cost_ties_keep_the_fresh_predecessor_choice() {
        // Two equal-cost routes to d: a-b-d and a-c-d. Block the third
        // route through e and check the repair lands on exactly the
        // predecessor the fresh run picks.
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, c, 1.0);
        g.add_edge(b, d, 1.0);
        g.add_edge(c, d, 1.0);
        g.add_edge(a, e, 0.5);
        g.add_edge(e, d, 0.5); // shortest route pre-delta: a-e-d at 1.0
        let mut ws = DijkstraWorkspace::new();
        dijkstra_into(&mut ws, &g, a, &DijkstraConfig::all_nodes(cost));
        let mut delta = SsspDelta::new();
        delta.block_node(e);
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: move |v: NodeId| v != e,
        };
        let mut scratch = RepairScratch::new();
        let (view, _) = dijkstra_repair_into(&mut ws, &mut scratch, &g, &g, &cfg, &delta);
        let mut fresh_ws = DijkstraWorkspace::new();
        let fresh = dijkstra_into(&mut fresh_ws, &g, a, &cfg).to_run();
        let repaired = view.to_run();
        assert_eq!(repaired, fresh);
        assert_eq!(
            repaired.prev_hop(d).map(|(p, _)| p),
            fresh.prev_hop(d).map(|(p, _)| p),
            "fp-tie predecessor choice must survive the repair"
        );
    }

    #[test]
    #[should_panic(expected = "no run over this adjacency")]
    fn repairing_a_foreign_workspace_panics() {
        let (g, _, _) = diamond();
        let mut ws = DijkstraWorkspace::new();
        let mut scratch = RepairScratch::new();
        let delta = SsspDelta::new();
        dijkstra_repair_into(
            &mut ws,
            &mut scratch,
            &g,
            &g,
            &DijkstraConfig::all_nodes(cost),
            &delta,
        );
    }
}
