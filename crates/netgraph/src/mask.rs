//! Failure masks over a graph's dense id space.
//!
//! A [`SearchMask`] marks edges and vertices as *dead* without mutating
//! or rebuilding the graph. Masked searches ([`dijkstra_masked_into`],
//! [`k_shortest_paths_masked_in`]) treat a dead edge — or any edge
//! incident to a dead vertex — as having infinite cost, and refuse to
//! relay through a dead vertex. Because the underlying graph is
//! untouched, node and edge ids remain stable across failures, which is
//! what lets a survivability layer compare pre- and post-failure
//! routing state in one id space. (Contrast [`Graph::filter_edges`],
//! which re-densifies edge ids.)
//!
//! Masks carry an order-independent content [`hash`](SearchMask::hash)
//! so caches that memoize search results can key entries by
//! `(source, capacity epoch, mask hash)` — two masks that kill the same
//! set of elements hash identically regardless of kill order, and the
//! empty mask always hashes to `0`.

use crate::csr::Adjacency;
use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::paths::{
    dijkstra_adj_into, dijkstra_into, DijkstraConfig, DijkstraView, DijkstraWorkspace, Path,
};

/// FNV-1a over a small tag + index pair; each killed element contributes
/// one such digest, combined by XOR so the total is order-independent.
fn element_digest(tag: u64, index: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in tag
        .to_le_bytes()
        .into_iter()
        .chain((index as u64).to_le_bytes())
    {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A set of dead edges and dead vertices, with a stable content hash.
///
/// Killing the same element twice is a no-op (the hash is not
/// perturbed), so a mask built up incrementally over repeated failures
/// stays consistent with one built in a single pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchMask {
    dead_edges: Vec<bool>,
    dead_nodes: Vec<bool>,
    hash: u64,
    dead_edge_count: usize,
    dead_node_count: usize,
}

impl SearchMask {
    /// An empty mask: everything alive, hash `0`.
    pub fn new() -> Self {
        SearchMask::default()
    }

    /// Marks an edge dead. Returns `true` if it was alive before.
    pub fn kill_edge(&mut self, e: EdgeId) -> bool {
        let i = e.index();
        if self.dead_edges.len() <= i {
            self.dead_edges.resize(i + 1, false);
        }
        if self.dead_edges[i] {
            return false;
        }
        self.dead_edges[i] = true;
        self.dead_edge_count += 1;
        self.hash ^= element_digest(1, i);
        true
    }

    /// Marks a vertex dead. Returns `true` if it was alive before.
    ///
    /// A dead vertex blocks more than relaying: every incident edge is
    /// treated as dead too, so the vertex cannot appear in a masked
    /// path even as an endpoint.
    pub fn kill_node(&mut self, v: NodeId) -> bool {
        let i = v.index();
        if self.dead_nodes.len() <= i {
            self.dead_nodes.resize(i + 1, false);
        }
        if self.dead_nodes[i] {
            return false;
        }
        self.dead_nodes[i] = true;
        self.dead_node_count += 1;
        self.hash ^= element_digest(2, i);
        true
    }

    /// Is this edge dead?
    pub fn edge_dead(&self, e: EdgeId) -> bool {
        self.dead_edges.get(e.index()).copied().unwrap_or(false)
    }

    /// Is this vertex dead?
    pub fn node_dead(&self, v: NodeId) -> bool {
        self.dead_nodes.get(v.index()).copied().unwrap_or(false)
    }

    /// Is the edge unusable under this mask — dead itself, or incident
    /// to a dead vertex?
    pub fn blocks(&self, id: EdgeId, a: NodeId, b: NodeId) -> bool {
        self.edge_dead(id) || self.node_dead(a) || self.node_dead(b)
    }

    /// `true` when nothing is dead.
    pub fn is_empty(&self) -> bool {
        self.dead_edge_count == 0 && self.dead_node_count == 0
    }

    /// Number of dead edges.
    pub fn dead_edge_count(&self) -> usize {
        self.dead_edge_count
    }

    /// Number of dead vertices.
    pub fn dead_node_count(&self) -> usize {
        self.dead_node_count
    }

    /// Order-independent content hash; `0` for the empty mask.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// `true` when any node of `path` is dead or any edge of `path` is
    /// blocked under this mask.
    pub fn breaks_path(&self, path: &Path) -> bool {
        path.nodes.iter().any(|&v| self.node_dead(v))
            || path.edges.iter().any(|&e| self.edge_dead(e))
    }
}

/// Single-source shortest paths under a failure mask: dead edges (and
/// edges incident to dead vertices) cost `+∞`, dead vertices never
/// relay. Semantics are otherwise identical to
/// [`dijkstra_into`](crate::dijkstra_into).
pub fn dijkstra_masked_into<'w, N, E, FC, FR>(
    ws: &'w mut DijkstraWorkspace,
    g: &Graph<N, E>,
    source: NodeId,
    config: &DijkstraConfig<FC, FR>,
    mask: &SearchMask,
) -> DijkstraView<'w>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let masked = DijkstraConfig {
        edge_cost: |e: EdgeRef<'_, E>| {
            if mask.blocks(e.id, e.a, e.b) {
                f64::INFINITY
            } else {
                (config.edge_cost)(e)
            }
        },
        can_relay: |v: NodeId| !mask.node_dead(v) && (config.can_relay)(v),
    };
    dijkstra_into(ws, g, source, &masked)
}

/// [`dijkstra_masked_into`] over an explicit [`Adjacency`] (the graph
/// itself or a [`crate::CsrGraph`] frozen from it) — bitwise-identical
/// results on either layout.
pub fn dijkstra_masked_adj_into<'w, A, N, E, FC, FR>(
    ws: &'w mut DijkstraWorkspace,
    adj: &A,
    g: &Graph<N, E>,
    source: NodeId,
    config: &DijkstraConfig<FC, FR>,
    mask: &SearchMask,
) -> DijkstraView<'w>
where
    A: Adjacency + ?Sized,
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let masked = DijkstraConfig {
        edge_cost: |e: EdgeRef<'_, E>| {
            if mask.blocks(e.id, e.a, e.b) {
                f64::INFINITY
            } else {
                (config.edge_cost)(e)
            }
        },
        can_relay: |v: NodeId| !mask.node_dead(v) && (config.can_relay)(v),
    };
    dijkstra_adj_into(ws, adj, g, source, &masked)
}

/// Yen's k shortest paths under a failure mask; see
/// [`dijkstra_masked_into`] for the mask semantics and
/// [`crate::ksp::k_shortest_paths_in`] for everything else.
pub fn k_shortest_paths_masked_in<N, E, FC, FR>(
    ws: &mut DijkstraWorkspace,
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
    mask: &SearchMask,
) -> Vec<Path>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let masked = DijkstraConfig {
        edge_cost: |e: EdgeRef<'_, E>| {
            if mask.blocks(e.id, e.a, e.b) {
                f64::INFINITY
            } else {
                (config.edge_cost)(e)
            }
        },
        can_relay: |v: NodeId| !mask.node_dead(v) && (config.can_relay)(v),
    };
    crate::ksp::k_shortest_paths_in(ws, g, source, target, k, &masked)
}

/// [`k_shortest_paths_masked_in`] over an explicit [`Adjacency`] — see
/// [`dijkstra_masked_adj_into`] for the layout contract.
#[allow(clippy::too_many_arguments)]
pub fn k_shortest_paths_masked_adj_in<A, N, E, FC, FR>(
    ws: &mut DijkstraWorkspace,
    adj: &A,
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
    mask: &SearchMask,
) -> Vec<Path>
where
    A: Adjacency + ?Sized,
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let masked = DijkstraConfig {
        edge_cost: |e: EdgeRef<'_, E>| {
            if mask.blocks(e.id, e.a, e.b) {
                f64::INFINITY
            } else {
                (config.edge_cost)(e)
            }
        },
        can_relay: |v: NodeId| !mask.node_dead(v) && (config.can_relay)(v),
    };
    crate::ksp::k_shortest_paths_adj_in(ws, adj, g, source, target, k, &masked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// 0 -1- 1 -1- 3, 0 -2- 2 -1- 3, 0 -5- 3.
    fn diamond() -> (Graph<(), f64>, [NodeId; 4], [EdgeId; 5]) {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        let e01 = g.add_edge(n[0], n[1], 1.0);
        let e13 = g.add_edge(n[1], n[3], 1.0);
        let e02 = g.add_edge(n[0], n[2], 2.0);
        let e23 = g.add_edge(n[2], n[3], 1.0);
        let e03 = g.add_edge(n[0], n[3], 5.0);
        (g, [n[0], n[1], n[2], n[3]], [e01, e13, e02, e23, e03])
    }

    #[test]
    fn empty_mask_matches_unmasked_search() {
        let (g, [s, _, _, t], _) = diamond();
        let mut ws = DijkstraWorkspace::new();
        let cfg = DijkstraConfig::all_nodes(cost);
        let mask = SearchMask::new();
        assert_eq!(mask.hash(), 0);
        assert!(mask.is_empty());
        let masked = dijkstra_masked_into(&mut ws, &g, s, &cfg, &mask)
            .path_to(t)
            .expect("connected");
        let plain = dijkstra_into(&mut ws, &g, s, &cfg)
            .path_to(t)
            .expect("connected");
        assert_eq!(masked.nodes, plain.nodes);
        assert_eq!(masked.cost, plain.cost);
    }

    #[test]
    fn dead_edge_forces_detour() {
        let (g, [s, _, _, t], [e01, ..]) = diamond();
        let mut mask = SearchMask::new();
        assert!(mask.kill_edge(e01));
        assert!(!mask.kill_edge(e01), "second kill is a no-op");
        let mut ws = DijkstraWorkspace::new();
        let cfg = DijkstraConfig::all_nodes(cost);
        let p = dijkstra_masked_into(&mut ws, &g, s, &cfg, &mask)
            .path_to(t)
            .expect("detour exists");
        assert!(!p.edges.contains(&e01));
        assert_eq!(p.cost, 3.0); // 0-2-3
    }

    #[test]
    fn dead_vertex_is_unreachable_even_as_destination() {
        let (g, [s, n1, _, t], _) = diamond();
        let mut mask = SearchMask::new();
        mask.kill_node(n1);
        let mut ws = DijkstraWorkspace::new();
        let cfg = DijkstraConfig::all_nodes(cost);
        let view = dijkstra_masked_into(&mut ws, &g, s, &cfg, &mask);
        // Dead vertices are not just relay-forbidden: their incident
        // edges are blocked too, so n1 has no path at all.
        assert!(view.path_to(n1).is_none());
        let p = view.path_to(t).expect("detour exists");
        assert!(!p.nodes.contains(&n1));
        assert_eq!(p.cost, 3.0); // 0-2-3
    }

    #[test]
    fn hash_is_order_independent_and_idempotent() {
        let (_, [_, n1, n2, _], [e01, e13, ..]) = diamond();
        let mut a = SearchMask::new();
        a.kill_edge(e01);
        a.kill_node(n1);
        a.kill_edge(e13);
        a.kill_node(n2);
        let mut b = SearchMask::new();
        b.kill_node(n2);
        b.kill_edge(e13);
        b.kill_node(n1);
        b.kill_edge(e01);
        b.kill_edge(e01); // repeat must not perturb
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a, b);
        assert_ne!(a.hash(), 0);
        // Edge i dead and node i dead are distinct masks.
        let mut c = SearchMask::new();
        c.kill_edge(EdgeId::new(3));
        let mut d = SearchMask::new();
        d.kill_node(NodeId::new(3));
        assert_ne!(c.hash(), d.hash());
    }

    #[test]
    fn masked_yen_avoids_dead_elements() {
        let (g, [s, n1, _, t], [e01, ..]) = diamond();
        let mut mask = SearchMask::new();
        mask.kill_node(n1);
        let mut ws = DijkstraWorkspace::new();
        let cfg = DijkstraConfig::all_nodes(cost);
        let paths = k_shortest_paths_masked_in(&mut ws, &g, s, t, 10, &cfg, &mask);
        assert_eq!(paths.len(), 2); // 0-2-3 and 0-3
        for p in &paths {
            assert!(!p.nodes.contains(&n1));
            assert!(!p.edges.contains(&e01));
        }
        assert_eq!(paths[0].cost, 3.0);
        assert_eq!(paths[1].cost, 5.0);
    }

    #[test]
    fn breaks_path_detects_dead_elements() {
        let (g, [s, _, _, t], [e01, ..]) = diamond();
        let mut ws = DijkstraWorkspace::new();
        let cfg = DijkstraConfig::all_nodes(cost);
        let best = dijkstra_into(&mut ws, &g, s, &cfg)
            .path_to(t)
            .expect("connected");
        let mut mask = SearchMask::new();
        assert!(!mask.breaks_path(&best));
        mask.kill_edge(e01);
        assert!(mask.breaks_path(&best)); // best path is 0-1-3
    }
}
