//! Single-source shortest paths with pluggable costs and relay filters.
//!
//! [`dijkstra`] is the engine behind the paper's **Algorithm 1** (maximum
//! entanglement-rate channel): after the [`crate::NegLog`] transform the
//! max-rate channel is the min-cost path, with the twist that only quantum
//! switches *with at least two free qubits* may appear in the interior of a
//! channel. That twist is expressed here as the `can_relay` vertex filter:
//! edges are relaxed out of a vertex only if it is the source or the filter
//! admits it, so every reported path has all interior vertices admitted
//! while source and destination are unconstrained.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::{Adjacency, CsrGraph};
use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};

/// A simple path through the graph: node sequence, the edges between them,
/// and the total additive cost.
#[derive(Clone, Debug, PartialEq)]
pub struct Path {
    /// Visited nodes from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Edges between consecutive nodes (`edges.len() == nodes.len() - 1`).
    pub edges: Vec<EdgeId>,
    /// Total additive cost of the path.
    pub cost: f64,
}

impl Path {
    /// Number of edges (the paper's channel *distance* `l`).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` for a zero-edge path (source == destination).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Interior nodes of the path (everything but the two endpoints).
    pub fn interior(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// Source node.
    ///
    /// # Panics
    ///
    /// Panics if the path has no nodes (never produced by this crate).
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("path has at least one node")
    }

    /// Destination node.
    ///
    /// # Panics
    ///
    /// Panics if the path has no nodes (never produced by this crate).
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }
}

/// Configuration of a Dijkstra run: edge costs and the relay filter.
///
/// `edge_cost` returns the non-negative additive cost of traversing an
/// edge; returning `f64::INFINITY` excludes the edge. `can_relay` decides
/// whether a vertex may appear in the *interior* of a path; the source and
/// any destination are always allowed regardless of the filter.
#[derive(Clone, Copy, Debug)]
pub struct DijkstraConfig<FC, FR> {
    /// Cost of one edge; `INFINITY` to exclude it.
    pub edge_cost: FC,
    /// Whether a vertex may be an interior relay.
    pub can_relay: FR,
}

impl<FC> DijkstraConfig<FC, fn(NodeId) -> bool> {
    /// A configuration where every vertex may relay.
    pub fn all_nodes(edge_cost: FC) -> Self {
        fn always(_: NodeId) -> bool {
            true
        }
        DijkstraConfig {
            edge_cost,
            can_relay: always,
        }
    }
}

/// The result of a [`dijkstra`] run from one source.
#[derive(Clone, Debug, PartialEq)]
pub struct DijkstraRun {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl Default for DijkstraRun {
    /// An empty staging run (no vertices, placeholder source) for
    /// [`DijkstraView::write_run`] to fill — what batch-refresh paths
    /// use to recycle result buffers through a thread pool.
    fn default() -> Self {
        DijkstraRun {
            source: NodeId::new(0),
            dist: Vec::new(),
            prev: Vec::new(),
        }
    }
}

/// Reusable scratch state for repeated Dijkstra runs.
///
/// Every [`dijkstra`] call needs `dist`/`prev`/`settled` arrays and a
/// binary heap; allocating them fresh per call dominates the cost of
/// searches on small-to-medium graphs, and the MUERP solvers issue
/// hundreds of such searches per solve. A workspace owns those buffers
/// and *generation-stamps* them: each run bumps a generation counter and
/// a per-slot stamp records which run last wrote the slot, so resetting
/// between runs is O(1) — no clearing, no re-filling with `INFINITY`.
///
/// The same workspace may be reused across graphs of different sizes
/// (buffers grow monotonically) and across arbitrary cost/relay
/// configurations; a run never observes state from a previous run
/// (the proptest suite in `tests/properties.rs` pits a deliberately
/// dirty workspace against fresh runs).
#[derive(Clone, Debug)]
pub struct DijkstraWorkspace {
    pub(crate) generation: u32,
    pub(crate) active_len: usize,
    pub(crate) source: NodeId,
    pub(crate) stamp: Vec<u32>,
    pub(crate) dist: Vec<f64>,
    pub(crate) prev: Vec<Option<(NodeId, EdgeId)>>,
    pub(crate) settled: Vec<bool>,
    pub(crate) heap: BinaryHeap<HeapEntry>,
}

impl Default for DijkstraWorkspace {
    fn default() -> Self {
        DijkstraWorkspace {
            generation: 0,
            active_len: 0,
            source: NodeId::new(0),
            stamp: Vec::new(),
            dist: Vec::new(),
            prev: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }
}

impl DijkstraWorkspace {
    /// An empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of `nodes` vertices.
    pub fn with_capacity(nodes: usize) -> Self {
        let mut ws = Self::default();
        ws.grow(nodes);
        ws
    }

    /// Starts a new run over `n` vertices: O(1) unless buffers must grow
    /// or the 32-bit generation wraps (once per ~4 billion runs).
    pub(crate) fn begin(&mut self, n: usize) {
        qnet_obs::counter!("graph.workspace.runs");
        self.grow(n);
        self.active_len = n;
        self.heap.clear();
        if self.generation == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    fn grow(&mut self, n: usize) {
        if n > self.stamp.len() {
            // Stamp 0 can never equal the post-`begin` generation (≥ 1),
            // so fresh slots always read as untouched. Growth is the
            // arena's only allocation; `runs − grown` over `runs` is
            // the zero-alloc reuse rate the profile report prints.
            qnet_obs::counter!("graph.workspace.grown");
            self.stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, None);
            self.settled.resize(n, false);
        }
    }

    #[inline]
    pub(crate) fn is_current(&self, i: usize) -> bool {
        self.stamp[i] == self.generation
    }

    #[inline]
    pub(crate) fn dist_at(&self, i: usize) -> f64 {
        if self.is_current(i) {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    pub(crate) fn prev_at(&self, i: usize) -> Option<(NodeId, EdgeId)> {
        if self.is_current(i) {
            self.prev[i]
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn settled_at(&self, i: usize) -> bool {
        self.is_current(i) && self.settled[i]
    }

    /// Touches slot `i` for the current run (first write stamps it and
    /// clears run-local flags).
    #[inline]
    pub(crate) fn touch(&mut self, i: usize) {
        if !self.is_current(i) {
            self.stamp[i] = self.generation;
            self.settled[i] = false;
            self.prev[i] = None;
        }
    }

    /// Reloads a previously materialized [`DijkstraRun`] into the
    /// workspace, as if the run had just completed here: every finite
    /// slot is stamped, settled, and carries the stored distance and
    /// predecessor; every infinite slot reads as untouched.
    ///
    /// This is the bridge between cache-resident owned runs and the
    /// in-place repair of [`crate::delta::dijkstra_repair_into`]: a
    /// cache loads the stored state, repairs it against a delta, and
    /// writes the result back — without ever re-running from scratch.
    pub fn load_run(&mut self, run: &DijkstraRun) {
        let n = run.dist.len();
        self.begin(n);
        self.source = run.source;
        for i in 0..n {
            if run.dist[i].is_finite() {
                self.touch(i);
                self.dist[i] = run.dist[i];
                self.prev[i] = run.prev[i];
                self.settled[i] = true;
            }
        }
    }
}

/// A borrowed view of the most recent [`dijkstra_into`] run held in a
/// [`DijkstraWorkspace`]. Mirrors the query API of [`DijkstraRun`]
/// without owning (or allocating) the distance/predecessor arrays.
#[derive(Debug)]
pub struct DijkstraView<'w> {
    ws: &'w DijkstraWorkspace,
}

impl<'w> DijkstraView<'w> {
    pub(crate) fn over(ws: &'w DijkstraWorkspace) -> Self {
        DijkstraView { ws }
    }
}

impl DijkstraView<'_> {
    /// The source of the run.
    pub fn source(&self) -> NodeId {
        self.ws.source
    }

    /// Cost of the cheapest admissible path to `target`, or `None` when
    /// unreachable.
    pub fn distance(&self, target: NodeId) -> Option<f64> {
        let d = self.ws.dist_at(target.index());
        d.is_finite().then_some(d)
    }

    /// Reconstructs the cheapest admissible path to `target`, or `None`
    /// when unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        let cost = self.distance(target)?;
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.ws.prev_at(cur.index()) {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        debug_assert_eq!(cur, self.ws.source);
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, cost })
    }

    /// Iterates over all reachable targets and their distances.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        (0..self.ws.active_len)
            .map(|i| (i, self.ws.dist_at(i)))
            .filter(|(_, d)| d.is_finite())
            .map(|(i, d)| (NodeId::new(i), d))
    }

    /// Materializes the run into an owned [`DijkstraRun`].
    pub fn to_run(&self) -> DijkstraRun {
        let mut run = DijkstraRun {
            source: self.ws.source,
            dist: Vec::new(),
            prev: Vec::new(),
        };
        self.write_run(&mut run);
        run
    }

    /// Copies the run into `out`, reusing its buffers (no allocation
    /// once `out` has reached the graph's size).
    ///
    /// One fused pass over the workspace slots: each slot's generation
    /// stamp is loaded once and both the distance and the predecessor
    /// are emitted from it, instead of the two stamp-checking sweeps a
    /// `dist_at`/`prev_at` pair of extends would make. This keeps a
    /// cache *refresh* (search + copy into recycled buffers) cheaper
    /// than a *fresh* fill (search + copy into new allocations) — the
    /// invariant the search-core bench asserts.
    pub fn write_run(&self, out: &mut DijkstraRun) {
        let ws = self.ws;
        let n = ws.active_len;
        out.source = ws.source;
        out.dist.clear();
        out.prev.clear();
        out.dist.reserve(n);
        out.prev.reserve(n);
        for ((&stamp, &dist), &prev) in ws.stamp[..n].iter().zip(&ws.dist[..n]).zip(&ws.prev[..n]) {
            let live = stamp == ws.generation;
            out.dist.push(if live { dist } else { f64::INFINITY });
            out.prev.push(if live { prev } else { None });
        }
    }
}

impl DijkstraRun {
    /// The source of the run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Cost of the cheapest admissible path to `target`, or `None` when
    /// unreachable.
    pub fn distance(&self, target: NodeId) -> Option<f64> {
        let d = self.dist[target.index()];
        d.is_finite().then_some(d)
    }

    /// Reconstructs the cheapest admissible path to `target`, or `None`
    /// when unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Path> {
        let cost = self.distance(target)?;
        let mut nodes = vec![target];
        let mut edges = Vec::new();
        let mut cur = target;
        while let Some((p, e)) = self.prev[cur.index()] {
            nodes.push(p);
            edges.push(e);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        nodes.reverse();
        edges.reverse();
        Some(Path { nodes, edges, cost })
    }

    /// Iterates over all reachable targets and their distances.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, d)| (NodeId::new(i), *d))
    }

    /// The predecessor hop of `target` in the shortest-path tree, or
    /// `None` for the source and unreachable nodes.
    pub fn prev_hop(&self, target: NodeId) -> Option<(NodeId, EdgeId)> {
        self.prev[target.index()]
    }

    /// Number of vertex slots the run covers.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// `true` when the run covers no vertices (a default staging run).
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) cost: f64,
    pub(crate) node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the min cost on top.
        // Costs are never NaN (validated at relaxation time).
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("edge costs are never NaN")
            .then_with(|| self.node.index().cmp(&other.node.index()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's algorithm from `source` under `config`, writing into a
/// reusable [`DijkstraWorkspace`] — the zero-allocation entry point.
///
/// The returned [`DijkstraView`] borrows the workspace; query it (or
/// materialize a [`DijkstraRun`] via [`DijkstraView::to_run`]) before
/// starting the next run. Complexity `O((|E| + |V|) log |V|)` with a
/// binary heap, matching the `O(|E| + |V| log |V|)` the paper quotes for
/// Algorithm 1 up to the usual binary-heap log factor.
///
/// # Panics
///
/// Panics if `edge_cost` returns a negative or NaN value. In release
/// builds the violation is detected by a single deferred check when the
/// run completes (the hot relaxation loop pays no branch-and-format per
/// edge); debug builds additionally pinpoint the offending edge at the
/// relaxation itself. A NaN or negative cost never corrupts a returned
/// result: the run panics before the view is handed back.
pub fn dijkstra_into<'w, N, E, FC, FR>(
    ws: &'w mut DijkstraWorkspace,
    g: &Graph<N, E>,
    source: NodeId,
    config: &DijkstraConfig<FC, FR>,
) -> DijkstraView<'w>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    dijkstra_adj_into(ws, g, g, source, config)
}

/// [`dijkstra_into`] over a frozen [`CsrGraph`] adjacency: identical
/// semantics and bitwise-identical results (CSR preserves neighbor
/// order), with edge payloads still read from the originating graph.
///
/// # Panics
///
/// Panics on negative/NaN edge costs (see [`dijkstra_into`]), and
/// debug-asserts that `csr` covers `g`'s vertex space.
pub fn dijkstra_csr_into<'w, N, E, FC, FR>(
    ws: &'w mut DijkstraWorkspace,
    csr: &CsrGraph,
    g: &Graph<N, E>,
    source: NodeId,
    config: &DijkstraConfig<FC, FR>,
) -> DijkstraView<'w>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    debug_assert_eq!(
        csr.node_count(),
        g.node_count(),
        "CSR adjacency must be built from this graph"
    );
    dijkstra_adj_into(ws, csr, g, source, config)
}

/// The generic search engine behind [`dijkstra_into`] and
/// [`dijkstra_csr_into`]: adjacency comes from `adj` (either the graph
/// itself or a [`CsrGraph`] frozen from it), edge payloads from `g`.
///
/// # Panics
///
/// Panics if `edge_cost` returns a negative or NaN value (see
/// [`dijkstra_into`] for when the check fires).
pub fn dijkstra_adj_into<'w, A, N, E, FC, FR>(
    ws: &'w mut DijkstraWorkspace,
    adj: &A,
    g: &Graph<N, E>,
    source: NodeId,
    config: &DijkstraConfig<FC, FR>,
) -> DijkstraView<'w>
where
    A: Adjacency + ?Sized,
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    qnet_obs::counter!("graph.dijkstra.calls");
    let _span = qnet_obs::span!("graph.dijkstra.run");
    ws.begin(adj.order());
    ws.source = source;
    // Tally locally; flush once at the end so the hot loop stays free of
    // shared-state traffic.
    let mut settled_n: u64 = 0;
    let mut relaxed_n: u64 = 0;
    // Deferred cost validation: `w >= 0.0` is false for both negative
    // and NaN costs, so a single accumulated flag checked after the loop
    // replaces a per-relaxation assert. NaN cannot leak into results in
    // the meantime (`cand < dist` is false for NaN), and the panic below
    // fires before any caller can observe the run.
    let mut costs_ok = true;

    ws.touch(source.index());
    ws.dist[source.index()] = 0.0;
    ws.heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });

    while let Some(HeapEntry { cost, node }) = ws.heap.pop() {
        if ws.settled[node.index()] {
            continue;
        }
        ws.settled[node.index()] = true;
        settled_n += 1;

        // Relax out of `node` only if it may serve as an interior relay
        // (the source itself always relays: it is an endpoint, not an
        // interior vertex, of any path it originates).
        if node != source && !(config.can_relay)(node) {
            continue;
        }

        for &(next, eid) in adj.neighbors_of(node) {
            if ws.settled_at(next.index()) {
                continue;
            }
            let w = (config.edge_cost)(g.edge(eid));
            debug_assert!(
                w >= 0.0 && !w.is_nan(),
                "edge cost must be non-negative and not NaN, got {w} for {eid}"
            );
            costs_ok &= w >= 0.0;
            if w.is_infinite() {
                continue;
            }
            let cand = cost + w;
            if cand < ws.dist_at(next.index()) {
                ws.touch(next.index());
                ws.dist[next.index()] = cand;
                ws.prev[next.index()] = Some((node, eid));
                relaxed_n += 1;
                ws.heap.push(HeapEntry {
                    cost: cand,
                    node: next,
                });
            }
        }
    }

    assert!(
        costs_ok,
        "edge cost must be non-negative and not NaN (run from {source}; \
         rebuild with debug assertions to locate the offending edge)"
    );
    qnet_obs::counter!("graph.dijkstra.settled"; settled_n);
    qnet_obs::counter!("graph.dijkstra.relaxations"; relaxed_n);
    DijkstraView { ws }
}

/// Dijkstra's algorithm from `source` under `config`.
///
/// Compatibility wrapper over [`dijkstra_into`] that allocates a private
/// [`DijkstraWorkspace`] per call and returns an owned [`DijkstraRun`].
/// Hot paths issuing many searches should hold a workspace and call
/// [`dijkstra_into`] instead.
///
/// # Panics
///
/// Panics if `edge_cost` returns a negative or NaN value (see
/// [`dijkstra_into`] for when the check fires).
pub fn dijkstra<N, E, FC, FR>(
    g: &Graph<N, E>,
    source: NodeId,
    config: &DijkstraConfig<FC, FR>,
) -> DijkstraRun
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let mut ws = DijkstraWorkspace::new();
    dijkstra_into(&mut ws, g, source, config).to_run()
}

/// Breadth-first shortest path by hop count, ignoring weights.
///
/// Returns `None` when `target` is unreachable from `source`.
pub fn bfs_path<N, E>(g: &Graph<N, E>, source: NodeId, target: NodeId) -> Option<Path> {
    let n = g.node_count();
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        if v == target {
            break;
        }
        for (next, eid) in g.neighbors(v) {
            if !seen[next.index()] {
                seen[next.index()] = true;
                prev[next.index()] = Some((v, eid));
                queue.push_back(next);
            }
        }
    }
    if !seen[target.index()] {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while let Some((p, e)) = prev[cur.index()] {
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    let cost = edges.len() as f64;
    Some(Path { nodes, edges, cost })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -1- 2
    ///  \----5----/
    fn diamond() -> (Graph<(), f64>, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(a, c, 5.0);
        (g, [a, b, c])
    }

    fn cost(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    #[test]
    fn shortest_path_basic() {
        let (g, [a, b, c]) = diamond();
        let run = dijkstra(&g, a, &DijkstraConfig::all_nodes(cost));
        assert_eq!(run.distance(c), Some(2.0));
        let p = run.path_to(c).unwrap();
        assert_eq!(p.nodes, vec![a, b, c]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), a);
        assert_eq!(p.destination(), c);
        assert_eq!(p.interior(), &[b]);
    }

    #[test]
    fn relay_filter_forces_detour() {
        let (g, [a, b, c]) = diamond();
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: |n: NodeId| n != b,
        };
        let run = dijkstra(&g, a, &cfg);
        // b is still *reachable* (it can be a destination)…
        assert_eq!(run.distance(b), Some(1.0));
        // …but paths may not pass through it.
        assert_eq!(run.distance(c), Some(5.0));
        assert_eq!(run.path_to(c).unwrap().nodes, vec![a, c]);
    }

    #[test]
    fn infinite_edge_cost_excludes_edge() {
        let (g, [a, _b, c]) = diamond();
        let cfg = DijkstraConfig::all_nodes(|e: EdgeRef<'_, f64>| {
            if *e.payload > 2.0 {
                f64::INFINITY
            } else {
                *e.payload
            }
        });
        let run = dijkstra(&g, a, &cfg);
        assert_eq!(run.distance(c), Some(2.0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let run = dijkstra(&g, a, &DijkstraConfig::all_nodes(cost));
        assert_eq!(run.distance(b), None);
        assert!(run.path_to(b).is_none());
    }

    #[test]
    fn source_distance_is_zero() {
        let (g, [a, ..]) = diamond();
        let run = dijkstra(&g, a, &DijkstraConfig::all_nodes(cost));
        assert_eq!(run.distance(a), Some(0.0));
        let p = run.path_to(a).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.interior(), &[] as &[NodeId]);
    }

    #[test]
    fn reachable_lists_everything_connected() {
        let (g, [a, ..]) = diamond();
        let run = dijkstra(&g, a, &DijkstraConfig::all_nodes(cost));
        assert_eq!(run.reachable().count(), 3);
    }

    #[test]
    fn picks_cheaper_of_parallel_edges() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 3.0);
        let cheap = g.add_edge(a, b, 1.0);
        let run = dijkstra(&g, a, &DijkstraConfig::all_nodes(cost));
        let p = run.path_to(b).unwrap();
        assert_eq!(p.cost, 1.0);
        assert_eq!(p.edges, vec![cheap]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let (g, [a, ..]) = diamond();
        let cfg = DijkstraConfig::all_nodes(|_e: EdgeRef<'_, f64>| -1.0);
        dijkstra(&g, a, &cfg);
    }

    #[test]
    fn bfs_prefers_fewest_hops() {
        let (g, [a, b, c]) = diamond();
        // Weighted shortest is a-b-c; hop shortest is the direct a-c edge.
        let p = bfs_path(&g, a, c).unwrap();
        assert_eq!(p.nodes, vec![a, c]);
        assert_eq!(bfs_path(&g, a, b).unwrap().len(), 1);
        let mut g2: Graph<(), f64> = Graph::new();
        let x = g2.add_node(());
        let y = g2.add_node(());
        assert!(bfs_path(&g2, x, y).is_none());
    }
}
