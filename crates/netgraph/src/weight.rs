//! The product→sum weight transform behind the paper's Algorithm 1.
//!
//! The MUERP objective (Eq. 1/2 of the paper) is a *product* of per-link
//! success probabilities and per-switch swapping rates, so classic additive
//! shortest-path machinery does not apply directly. The paper's fix (§IV-A)
//! is the standard logarithmic transform: each factor `t ∈ [0, 1]` becomes
//! the additive cost `−ln t ∈ [0, +∞]`, after which maximizing a product is
//! exactly minimizing a sum. [`NegLog`] packages that transform as a
//! newtype so the two domains cannot be mixed up.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// An additive cost equal to `−ln` of a success probability.
///
/// `NegLog(0.0)` corresponds to probability `1` (a free hop);
/// `NegLog(+∞)` corresponds to probability `0` (an unusable hop).
/// Values are always non-negative; NaN is rejected at construction.
///
/// # Example
///
/// ```
/// use qnet_graph::NegLog;
///
/// let hop = NegLog::from_prob(0.5);
/// let path = hop + hop;
/// assert!((path.prob() - 0.25).abs() < 1e-12);
/// assert!(NegLog::from_prob(0.9) < NegLog::from_prob(0.5)); // higher prob = lower cost
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NegLog(f64);

impl NegLog {
    /// The zero cost: probability exactly 1.
    pub const ZERO: NegLog = NegLog(0.0);

    /// The infinite cost: probability exactly 0 (unreachable).
    pub const INFINITY: NegLog = NegLog(f64::INFINITY);

    /// Converts a success probability `p ∈ [0, 1]` into its additive cost.
    ///
    /// # Panics
    ///
    /// Panics if `p` is NaN, negative, or greater than 1.
    pub fn from_prob(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        if p == 0.0 {
            NegLog::INFINITY
        } else {
            NegLog(-p.ln())
        }
    }

    /// Wraps a raw non-negative cost value (already in the `−ln` domain).
    ///
    /// # Panics
    ///
    /// Panics if `cost` is NaN or negative.
    pub fn from_cost(cost: f64) -> Self {
        assert!(
            cost >= 0.0 && !cost.is_nan(),
            "cost must be non-negative and not NaN, got {cost}"
        );
        NegLog(cost)
    }

    /// The raw additive cost.
    #[inline]
    pub fn cost(self) -> f64 {
        self.0
    }

    /// Converts back to a probability: `exp(−cost)`.
    #[inline]
    pub fn prob(self) -> f64 {
        (-self.0).exp()
    }

    /// `true` when the cost is infinite (probability 0).
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Saturating subtraction in the cost domain (used when factoring a
    /// `−ln q` term out of a channel weight, as the paper does when it
    /// reassembles `RATE = exp(ln q − Dist)`).
    pub fn saturating_sub(self, rhs: NegLog) -> NegLog {
        if self.0.is_infinite() {
            return NegLog::INFINITY;
        }
        NegLog((self.0 - rhs.0).max(0.0))
    }
}

impl Eq for NegLog {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for NegLog {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so partial_cmp always succeeds.
        self.0
            .partial_cmp(&other.0)
            .expect("NegLog is never NaN by construction")
    }
}

impl Add for NegLog {
    type Output = NegLog;
    fn add(self, rhs: NegLog) -> NegLog {
        NegLog(self.0 + rhs.0)
    }
}

impl AddAssign for NegLog {
    fn add_assign(&mut self, rhs: NegLog) {
        self.0 += rhs.0;
    }
}

impl Default for NegLog {
    fn default() -> Self {
        NegLog::ZERO
    }
}

impl fmt::Debug for NegLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NegLog({:.6} ~ p={:.6})", self.0, self.prob())
    }
}

impl fmt::Display for NegLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_prob() {
        for &p in &[1.0, 0.9, 0.5, 0.123, 1e-9] {
            let c = NegLog::from_prob(p);
            assert!((c.prob() - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn zero_prob_is_infinite_cost() {
        let c = NegLog::from_prob(0.0);
        assert!(c.is_infinite());
        assert_eq!(c.prob(), 0.0);
    }

    #[test]
    fn adding_costs_multiplies_probs() {
        let a = NegLog::from_prob(0.8);
        let b = NegLog::from_prob(0.25);
        assert!(((a + b).prob() - 0.2).abs() < 1e-12);
        let mut acc = NegLog::ZERO;
        acc += a;
        acc += b;
        assert!((acc.prob() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ordering_reverses_probability() {
        assert!(NegLog::from_prob(0.9) < NegLog::from_prob(0.8));
        assert!(NegLog::from_prob(0.0) > NegLog::from_prob(1e-300));
        assert_eq!(NegLog::ZERO.min(NegLog::INFINITY), NegLog::ZERO);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let small = NegLog::from_prob(0.9);
        let big = NegLog::from_prob(0.1);
        assert_eq!(small.saturating_sub(big), NegLog::ZERO);
        let diff = big.saturating_sub(small);
        assert!((diff.prob() - (0.1f64 / 0.9)).abs() < 1e-12);
        assert!(NegLog::INFINITY.saturating_sub(big).is_infinite());
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn rejects_out_of_range_prob() {
        NegLog::from_prob(1.5);
    }

    #[test]
    #[should_panic(expected = "cost must be non-negative")]
    fn rejects_negative_cost() {
        NegLog::from_cost(-0.1);
    }

    #[test]
    fn infinity_absorbs_addition() {
        let inf = NegLog::INFINITY;
        assert!((inf + NegLog::from_prob(0.5)).is_infinite());
        assert_eq!((inf + NegLog::ZERO).prob(), 0.0);
    }
}
