//! Minimum spanning trees: Kruskal and Prim.
//!
//! These classic algorithms serve two roles in the reproduction:
//!
//! 1. They are the structural skeletons of the paper's Algorithm 2
//!    (Kruskal-style channel selection) and Algorithm 4 (Prim-style tree
//!    growth) — the paper explicitly bases Algorithm 4 "on the principle of
//!    Prim Algorithm".
//! 2. They provide the classic-graph reference points of §III-A that MUERP
//!    is contrasted against.

use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::unionfind::UnionFind;

/// A spanning tree (or forest) expressed as a set of chosen edges plus the
/// total additive weight.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanningTree {
    /// Chosen edges.
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' weights.
    pub total_weight: f64,
}

impl SpanningTree {
    /// `true` when this tree spans all `n` nodes (has `n − 1` edges).
    pub fn spans(&self, n: usize) -> bool {
        n == 0 || self.edges.len() == n - 1
    }
}

/// Kruskal's algorithm under an arbitrary edge weight function.
///
/// Returns a minimum spanning *forest* when the graph is disconnected: the
/// edge set then spans each component. Use [`SpanningTree::spans`] to check
/// for a full tree.
pub fn kruskal<N, E, F>(g: &Graph<N, E>, weight: F) -> SpanningTree
where
    F: Fn(EdgeRef<'_, E>) -> f64,
{
    let mut order: Vec<(f64, EdgeId)> = g.edge_refs().map(|e| (weight(e), e.id)).collect();
    order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("weights are not NaN"));
    let mut uf = UnionFind::new(g.node_count());
    let mut edges = Vec::new();
    let mut total_weight = 0.0;
    for (w, eid) in order {
        let (a, b) = g.endpoints(eid);
        if uf.union_nodes(a, b) {
            edges.push(eid);
            total_weight += w;
            if edges.len() + 1 == g.node_count() {
                break;
            }
        }
    }
    SpanningTree {
        edges,
        total_weight,
    }
}

/// Prim's algorithm from a given root under an arbitrary edge weight
/// function.
///
/// Only the root's connected component is spanned; nodes outside it are
/// ignored.
pub fn prim<N, E, F>(g: &Graph<N, E>, root: NodeId, weight: F) -> SpanningTree
where
    F: Fn(EdgeRef<'_, E>) -> f64,
{
    use core::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry {
        w: f64,
        edge: EdgeId,
        to: NodeId,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.w == other.w && self.edge == other.edge
        }
    }
    impl Eq for Entry {}
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .w
                .partial_cmp(&self.w)
                .expect("weights are not NaN")
                .then_with(|| self.edge.cmp(&other.edge))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut in_tree = vec![false; g.node_count()];
    let mut heap = BinaryHeap::new();
    let mut edges = Vec::new();
    let mut total_weight = 0.0;

    in_tree[root.index()] = true;
    for (to, eid) in g.neighbors(root) {
        heap.push(Entry {
            w: weight(g.edge(eid)),
            edge: eid,
            to,
        });
    }
    while let Some(Entry { w, edge, to }) = heap.pop() {
        if in_tree[to.index()] {
            continue;
        }
        in_tree[to.index()] = true;
        edges.push(edge);
        total_weight += w;
        for (next, eid) in g.neighbors(to) {
            if !in_tree[next.index()] {
                heap.push(Entry {
                    w: weight(g.edge(eid)),
                    edge: eid,
                    to: next,
                });
            }
        }
    }
    SpanningTree {
        edges,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// Classic 4-node example with a unique MST of weight 1+2+3 = 6.
    fn square() -> Graph<(), f64> {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[1], ids[2], 2.0);
        g.add_edge(ids[2], ids[3], 3.0);
        g.add_edge(ids[3], ids[0], 10.0);
        g.add_edge(ids[0], ids[2], 10.0);
        g
    }

    #[test]
    fn kruskal_finds_minimum() {
        let g = square();
        let t = kruskal(&g, weight);
        assert!(t.spans(g.node_count()));
        assert_eq!(t.total_weight, 6.0);
        assert_eq!(t.edges.len(), 3);
    }

    #[test]
    fn prim_matches_kruskal_weight() {
        let g = square();
        for root in g.node_ids() {
            let t = prim(&g, root, weight);
            assert!(t.spans(g.node_count()));
            assert_eq!(t.total_weight, 6.0, "root {root}");
        }
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let mut g = square();
        g.add_node(()); // isolated
        let t = kruskal(&g, weight);
        assert!(!t.spans(g.node_count()));
        assert_eq!(t.edges.len(), 3);
        let p = prim(&g, NodeId::new(0), weight);
        assert_eq!(p.edges.len(), 3, "prim spans only the root component");
    }

    #[test]
    fn empty_graph() {
        let g: Graph<(), f64> = Graph::new();
        let t = kruskal(&g, weight);
        assert!(t.edges.is_empty());
        assert!(t.spans(0));
    }

    #[test]
    fn single_node() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let t = prim(&g, a, weight);
        assert!(t.edges.is_empty());
        assert!(t.spans(1));
    }

    #[test]
    fn prefers_cheap_parallel_edge() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 5.0);
        let cheap = g.add_edge(a, b, 1.0);
        assert_eq!(kruskal(&g, weight).edges, vec![cheap]);
        assert_eq!(prim(&g, a, weight).edges, vec![cheap]);
    }
}
