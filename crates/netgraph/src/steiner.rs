//! Steiner tree approximation (classic-graph reference point).
//!
//! §III-A of the paper contrasts MUERP with the graphical Steiner minimal
//! tree problem: similar statement, but Steiner trees let an edge serve
//! many paths and put no capacity on vertices. We implement the classic
//! shortest-path (Kou–Markowsky–Berman style) 2-approximation so tests and
//! examples can demonstrate exactly the divergence the paper describes —
//! instances where the Steiner tree is "connected" in the classic sense
//! yet infeasible as an entanglement tree.

use std::collections::HashSet;

use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::mst::kruskal;
use crate::paths::{dijkstra, DijkstraConfig};

/// An approximate Steiner tree: the chosen edges and their total weight.
#[derive(Clone, Debug, PartialEq)]
pub struct SteinerTree {
    /// Edges of the tree (ids in the original graph).
    pub edges: Vec<EdgeId>,
    /// Sum of chosen edge weights.
    pub total_weight: f64,
}

/// Shortest-path 2-approximation of the Steiner minimal tree over
/// `terminals`.
///
/// Returns `None` when the terminals do not lie in one connected component.
/// An empty or singleton terminal set yields an empty tree.
///
/// # Panics
///
/// Panics if `weight` produces a negative or NaN cost.
pub fn steiner_approximation<N, E, F>(
    g: &Graph<N, E>,
    terminals: &[NodeId],
    weight: F,
) -> Option<SteinerTree>
where
    F: Fn(EdgeRef<'_, E>) -> f64 + Copy,
{
    if terminals.len() <= 1 {
        return Some(SteinerTree {
            edges: Vec::new(),
            total_weight: 0.0,
        });
    }

    // 1. Metric closure over the terminals.
    let runs: Vec<_> = terminals
        .iter()
        .map(|&t| dijkstra(g, t, &DijkstraConfig::all_nodes(weight)))
        .collect();
    let mut closure: Graph<NodeId, (f64, usize, usize)> = Graph::new();
    for &t in terminals {
        closure.add_node(t);
    }
    for (i, run) in runs.iter().enumerate() {
        for (j, &tj) in terminals.iter().enumerate().skip(i + 1) {
            match run.distance(tj) {
                Some(d) => {
                    closure.add_node_pair_edge(i, j, (d, i, j));
                }
                None => return None, // disconnected terminals
            }
        }
    }

    // 2. MST of the closure.
    let closure_mst = kruskal(&closure, |e: EdgeRef<'_, (f64, usize, usize)>| e.payload.0);

    // 3. Expand closure edges into original-graph paths; collect edge set.
    let mut chosen: HashSet<EdgeId> = HashSet::new();
    for ce in closure_mst.edges {
        let &(_, i, j) = closure.edge(ce).payload;
        let path = runs[i]
            .path_to(terminals[j])
            .expect("closure edge implies reachability");
        chosen.extend(path.edges);
    }

    // 4. MST of the induced subgraph (removes accidental cycles). Build a
    // weight-payload copy so we need no Clone bounds on N/E; remember the
    // original edge ids positionally.
    let mut sub: Graph<(), f64> = Graph::with_capacity(g.node_count(), chosen.len());
    for _ in 0..g.node_count() {
        sub.add_node(());
    }
    let mut original_ids: Vec<EdgeId> = Vec::with_capacity(chosen.len());
    for e in g.edge_refs() {
        if chosen.contains(&e.id) {
            sub.add_edge(e.a, e.b, weight(e));
            original_ids.push(e.id);
        }
    }
    let sub_mst = kruskal(&sub, |e: EdgeRef<'_, f64>| *e.payload);

    // 5. Prune non-terminal leaves until fixed point.
    let terminal_set: HashSet<NodeId> = terminals.iter().copied().collect();
    let mut keep: HashSet<usize> = sub_mst.edges.iter().map(|e| e.index()).collect();
    loop {
        let mut degree = vec![0usize; sub.node_count()];
        for &ei in &keep {
            let (a, b) = sub.endpoints(EdgeId::new(ei));
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let before = keep.len();
        keep.retain(|&ei| {
            let (a, b) = sub.endpoints(EdgeId::new(ei));
            let a_leaf = degree[a.index()] == 1 && !terminal_set.contains(&a);
            let b_leaf = degree[b.index()] == 1 && !terminal_set.contains(&b);
            !(a_leaf || b_leaf)
        });
        if keep.len() == before {
            break;
        }
    }

    let mut edges: Vec<EdgeId> = keep.iter().map(|&ei| original_ids[ei]).collect();
    edges.sort();
    let total_weight = edges.iter().map(|&e| weight(g.edge(e))).sum();
    Some(SteinerTree {
        edges,
        total_weight,
    })
}

impl Graph<NodeId, (f64, usize, usize)> {
    /// Internal helper: adds a closure edge keyed by terminal indices.
    fn add_node_pair_edge(&mut self, i: usize, j: usize, payload: (f64, usize, usize)) {
        self.add_edge(NodeId::new(i), NodeId::new(j), payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// Star: terminals on the rim, one cheap hub in the middle.
    #[test]
    fn star_uses_hub_as_steiner_point() {
        let mut g: Graph<(), f64> = Graph::new();
        let hub = g.add_node(());
        let t: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        for &ti in &t {
            g.add_edge(hub, ti, 1.0);
        }
        // Expensive direct rim edges.
        g.add_edge(t[0], t[1], 10.0);
        g.add_edge(t[1], t[2], 10.0);
        let tree = steiner_approximation(&g, &t, w).unwrap();
        assert_eq!(tree.edges.len(), 3);
        assert!((tree.total_weight - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_terminals_is_shortest_path() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let m = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, m, 1.0);
        g.add_edge(m, b, 1.0);
        g.add_edge(a, b, 5.0);
        let tree = steiner_approximation(&g, &[a, b], w).unwrap();
        assert!((tree.total_weight - 2.0).abs() < 1e-9);
        assert_eq!(tree.edges.len(), 2);
    }

    #[test]
    fn singleton_and_empty_terminals() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        assert_eq!(steiner_approximation(&g, &[a], w).unwrap().edges.len(), 0);
        assert_eq!(steiner_approximation(&g, &[], w).unwrap().edges.len(), 0);
    }

    #[test]
    fn disconnected_terminals_yield_none() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(steiner_approximation(&g, &[a, b], w).is_none());
    }

    #[test]
    fn prunes_dangling_steiner_points() {
        // Path a - x - b plus a dead-end x - y: y must never appear.
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let x = g.add_node(());
        let b = g.add_node(());
        let y = g.add_node(());
        g.add_edge(a, x, 1.0);
        g.add_edge(x, b, 1.0);
        g.add_edge(x, y, 0.1);
        let tree = steiner_approximation(&g, &[a, b], w).unwrap();
        assert_eq!(tree.edges.len(), 2);
        for &e in &tree.edges {
            let (p, q) = g.endpoints(e);
            assert!(p != y && q != y);
        }
    }

    #[test]
    fn result_spans_terminals() {
        // Grid-ish graph, 3 spread terminals.
        let mut g: Graph<(), f64> = Graph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        let pairs = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)];
        for (a, b) in pairs {
            g.add_edge(n[a], n[b], 1.0);
        }
        let terminals = [n[0], n[2], n[5]];
        let tree = steiner_approximation(&g, &terminals, w).unwrap();
        let sub = g.filter_edges(|e| tree.edges.contains(&e.id));
        assert!(crate::connectivity::nodes_connected(&sub, &terminals));
    }
}
