//! Yen's algorithm: the k cheapest loopless paths between two vertices.
//!
//! Used by the MUERP local-search extension to enumerate *alternative*
//! quantum channels for a user pair — the capacity-aware tree improvement
//! needs more than the single best channel Algorithm 1 yields.
//!
//! The implementation honors the same vertex semantics as
//! [`crate::dijkstra`]: a `can_relay` filter restricts which vertices may
//! appear in a path's *interior*, so the k-best channels all remain valid
//! MUERP channels.

use std::collections::HashSet;

use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::paths::{dijkstra, DijkstraConfig, Path};

/// The `k` cheapest loopless paths from `source` to `target` under the
/// given cost and relay filter, sorted by cost ascending.
///
/// Fewer than `k` paths are returned when the graph does not contain
/// that many distinct admissible simple paths. `k = 0` returns an empty
/// vector.
///
/// # Panics
///
/// Panics if `edge_cost` produces negative or NaN values (inherited from
/// [`dijkstra`]).
pub fn k_shortest_paths<N, E, FC, FR>(
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    qnet_obs::counter!("graph.ksp.calls");
    if k == 0 || source == target {
        return Vec::new();
    }
    let mut accepted: Vec<Path> = Vec::with_capacity(k);
    let mut candidates: Vec<Path> = Vec::new();
    let mut expansions: u64 = 0;

    let Some(first) = dijkstra(g, source, config).path_to(target) else {
        return Vec::new();
    };
    accepted.push(first);

    while accepted.len() < k {
        let prev = accepted.last().expect("at least one accepted path");

        // Spur from every prefix position of the previous path.
        for spur_idx in 0..prev.nodes.len() - 1 {
            let spur_node = prev.nodes[spur_idx];
            let root_nodes = &prev.nodes[..=spur_idx];
            let root_edges = &prev.edges[..spur_idx];

            // The spur node must be admissible at its position in the
            // final path: as source (spur_idx == 0) it always is; as an
            // interior vertex it must pass the relay filter.
            if spur_idx > 0 && !(config.can_relay)(spur_node) {
                continue;
            }

            // Ban: edges leaving the spur node on any accepted/candidate
            // path sharing this root, and all root nodes except the spur
            // (to keep the final path simple).
            // Root comparison uses the *edge* sequence: with parallel
            // edges two distinct roots share the same node prefix, and
            // banning across them loses paths.
            let mut banned_edges: HashSet<EdgeId> = HashSet::new();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > spur_idx && p.edges[..spur_idx] == *root_edges {
                    banned_edges.insert(p.edges[spur_idx]);
                }
            }
            let banned_nodes: HashSet<NodeId> = root_nodes[..spur_idx].iter().copied().collect();

            let spur_cfg = DijkstraConfig {
                edge_cost: |e: EdgeRef<'_, E>| {
                    if banned_edges.contains(&e.id)
                        || banned_nodes.contains(&e.a)
                        || banned_nodes.contains(&e.b)
                    {
                        f64::INFINITY
                    } else {
                        (config.edge_cost)(e)
                    }
                },
                can_relay: |n: NodeId| !banned_nodes.contains(&n) && (config.can_relay)(n),
            };
            expansions += 1;
            let Some(spur_path) = dijkstra(g, spur_node, &spur_cfg).path_to(target) else {
                continue;
            };

            // Stitch root + spur.
            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur_path.nodes[1..]);
            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(&spur_path.edges);
            let cost: f64 = edges.iter().map(|&e| (config.edge_cost)(g.edge(e))).sum();
            let candidate = Path { nodes, edges, cost };

            // Deduplicate (same edge sequence).
            let duplicate = accepted
                .iter()
                .chain(candidates.iter())
                .any(|p| p.edges == candidate.edges);
            if !duplicate {
                candidates.push(candidate);
            }
        }

        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate.
        let best_idx = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.cost
                    .partial_cmp(&b.1.cost)
                    .expect("costs are not NaN")
                    .then_with(|| a.1.edges.cmp(&b.1.edges))
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates");
        accepted.push(candidates.swap_remove(best_idx));
    }
    qnet_obs::counter!("graph.ksp.spur_expansions"; expansions);
    qnet_obs::counter!("graph.ksp.paths_generated"; accepted.len() as u64);
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// Classic Yen example shape: multiple routes of distinct costs.
    ///   0 -1- 1 -1- 3
    ///   0 -2- 2 -1- 3
    ///   1 -1- 2,  0 -5- 3
    fn diamond() -> (Graph<(), f64>, [NodeId; 4]) {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 1.0);
        g.add_edge(n[1], n[3], 1.0);
        g.add_edge(n[0], n[2], 2.0);
        g.add_edge(n[2], n[3], 1.0);
        g.add_edge(n[1], n[2], 1.0);
        g.add_edge(n[0], n[3], 5.0);
        (g, [n[0], n[1], n[2], n[3]])
    }

    #[test]
    fn finds_paths_in_cost_order() {
        let (g, [s, _, _, t]) = diamond();
        let paths = k_shortest_paths(&g, s, t, 10, &DijkstraConfig::all_nodes(cost));
        assert!(paths.len() >= 4);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
        assert_eq!(paths[0].cost, 2.0); // 0-1-3
        assert_eq!(paths[1].cost, 3.0); // 0-2-3 or 0-1-2-3
    }

    #[test]
    fn paths_are_simple_and_distinct() {
        let (g, [s, _, _, t]) = diamond();
        let paths = k_shortest_paths(&g, s, t, 10, &DijkstraConfig::all_nodes(cost));
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.edges.clone()), "duplicate path");
            let mut nodes = p.nodes.clone();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes.len(), "loopy path");
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), t);
        }
    }

    #[test]
    fn matches_bruteforce_enumeration() {
        let (g, [s, _, _, t]) = diamond();
        // Brute force: all simple paths s→t.
        fn all_paths(
            g: &Graph<(), f64>,
            cur: NodeId,
            t: NodeId,
            visited: &mut Vec<NodeId>,
            edges: &mut Vec<EdgeId>,
            out: &mut Vec<(f64, Vec<EdgeId>)>,
        ) {
            if cur == t {
                let c = edges.iter().map(|&e| *g.edge(e).payload).sum();
                out.push((c, edges.clone()));
                return;
            }
            for (next, eid) in g.neighbors(cur) {
                if !visited.contains(&next) {
                    visited.push(next);
                    edges.push(eid);
                    all_paths(g, next, t, visited, edges, out);
                    edges.pop();
                    visited.pop();
                }
            }
        }
        let mut brute = Vec::new();
        all_paths(&g, s, t, &mut vec![s], &mut Vec::new(), &mut brute);
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let yen = k_shortest_paths(&g, s, t, brute.len() + 5, &DijkstraConfig::all_nodes(cost));
        assert_eq!(yen.len(), brute.len(), "yen must find every simple path");
        for (p, (c, _)) in yen.iter().zip(&brute) {
            assert!((p.cost - c).abs() < 1e-12, "cost sequence must match");
        }
    }

    #[test]
    fn respects_relay_filter() {
        let (g, [s, n1, _, t]) = diamond();
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: |n: NodeId| n != n1,
        };
        let paths = k_shortest_paths(&g, s, t, 10, &cfg);
        for p in &paths {
            assert!(!p.interior().contains(&n1), "forbidden interior {p:?}");
        }
        // Direct 0-3 and 0-2-3 remain.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn k_zero_and_same_endpoints() {
        let (g, [s, _, _, t]) = diamond();
        assert!(k_shortest_paths(&g, s, t, 0, &DijkstraConfig::all_nodes(cost)).is_empty());
        assert!(k_shortest_paths(&g, s, s, 3, &DijkstraConfig::all_nodes(cost)).is_empty());
    }

    #[test]
    fn disconnected_yields_empty() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(k_shortest_paths(&g, a, b, 3, &DijkstraConfig::all_nodes(cost)).is_empty());
    }

    #[test]
    fn parallel_edges_are_distinct_paths() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        let paths = k_shortest_paths(&g, a, b, 5, &DijkstraConfig::all_nodes(cost));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost, 1.0);
        assert_eq!(paths[1].cost, 2.0);
    }
}
