//! Yen's algorithm: the k cheapest loopless paths between two vertices.
//!
//! Used by the MUERP local-search extension to enumerate *alternative*
//! quantum channels for a user pair — the capacity-aware tree improvement
//! needs more than the single best channel Algorithm 1 yields.
//!
//! The implementation honors the same vertex semantics as
//! [`crate::dijkstra`]: a `can_relay` filter restricts which vertices may
//! appear in a path's *interior*, so the k-best channels all remain valid
//! MUERP channels.

use std::cmp::Ordering;
use std::collections::HashSet;

use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::paths::{dijkstra_into, DijkstraConfig, DijkstraWorkspace, Path};

/// Candidate ordering: cheapest first, ties broken by the edge sequence
/// for determinism.
fn path_order(a: &Path, b: &Path) -> Ordering {
    a.cost
        .partial_cmp(&b.cost)
        .expect("costs are not NaN")
        .then_with(|| a.edges.cmp(&b.edges))
}

/// The `k` cheapest loopless paths from `source` to `target` under the
/// given cost and relay filter, sorted by cost ascending.
///
/// Convenience wrapper over [`k_shortest_paths_in`] that allocates a
/// private [`DijkstraWorkspace`]; callers issuing many KSP queries
/// should hold a workspace and use the `_in` variant.
///
/// Fewer than `k` paths are returned when the graph does not contain
/// that many distinct admissible simple paths. `k = 0` returns an empty
/// vector.
///
/// # Panics
///
/// Panics if `edge_cost` produces negative or NaN values (inherited from
/// [`crate::dijkstra`]).
pub fn k_shortest_paths<N, E, FC, FR>(
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let mut ws = DijkstraWorkspace::new();
    k_shortest_paths_in(&mut ws, g, source, target, k, config)
}

/// Yen's algorithm on a caller-provided [`DijkstraWorkspace`]: every
/// spur search reuses the workspace's arrays and heap, so one KSP query
/// performs no per-spur allocation beyond the paths it reports.
///
/// Two further optimizations over the textbook formulation:
///
/// * **Root-cost bookkeeping** — a candidate's cost is the prefix sum of
///   its root plus the spur search's accumulated cost; edge costs are
///   never re-summed over the whole stitched path.
/// * **Root-path cost pruning** — with `m` accepted slots left and at
///   least `m` pending candidates, a spur whose root already costs
///   strictly more than the `m`-th cheapest pending candidate cannot
///   contribute an accepted path (every future pick is at most that
///   bound), so the spur search is skipped entirely. The strict
///   inequality keeps equal-cost path sets intact.
pub fn k_shortest_paths_in<N, E, FC, FR>(
    ws: &mut DijkstraWorkspace,
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    qnet_obs::counter!("graph.ksp.calls");
    let _span = qnet_obs::span!("graph.ksp.solve");
    if k == 0 || source == target {
        return Vec::new();
    }
    let mut accepted: Vec<Path> = Vec::with_capacity(k);
    // Sorted *descending* by (cost, edges): the cheapest candidate pops
    // from the back in O(1), and the pruning bound below indexes the
    // m-th cheapest directly.
    let mut candidates: Vec<Path> = Vec::new();
    let mut expansions: u64 = 0;
    let mut pruned: u64 = 0;
    // Ban sets are reused (cleared, not reallocated) across spurs.
    let mut banned_edges: HashSet<EdgeId> = HashSet::new();
    let mut banned_nodes: HashSet<NodeId> = HashSet::new();
    // Prefix sums of the previous accepted path's edge costs:
    // root_cost[i] = cost of its first i edges, summed left to right —
    // bitwise identical to the sequential sum Dijkstra itself computes.
    let mut root_cost: Vec<f64> = Vec::new();

    let Some(first) = dijkstra_into(ws, g, source, config).path_to(target) else {
        return Vec::new();
    };
    accepted.push(first);

    while accepted.len() < k {
        // One spur round: every prefix position of the latest accepted
        // path. The nested dijkstra spans attribute the round's cost.
        let _round = qnet_obs::span!("graph.ksp.spur_round");
        let prev = accepted.last().expect("at least one accepted path");
        root_cost.clear();
        root_cost.push(0.0);
        for &e in &prev.edges {
            root_cost.push(root_cost.last().unwrap() + (config.edge_cost)(g.edge(e)));
        }

        // Spur from every prefix position of the previous path. Indexed
        // loop: `prev` must be re-borrowed each iteration because the
        // ban sets the spur config closes over are rebuilt in the body.
        #[allow(clippy::needless_range_loop)]
        for spur_idx in 0..prev.nodes.len() - 1 {
            let prev = accepted.last().expect("at least one accepted path");
            let spur_node = prev.nodes[spur_idx];

            // The spur node must be admissible at its position in the
            // final path: as source (spur_idx == 0) it always is; as an
            // interior vertex it must pass the relay filter.
            if spur_idx > 0 && !(config.can_relay)(spur_node) {
                continue;
            }

            // Root-path cost pruning (see the function docs for why the
            // strict bound is safe).
            let remaining = k - accepted.len();
            if candidates.len() >= remaining
                && root_cost[spur_idx] > candidates[candidates.len() - remaining].cost
            {
                pruned += 1;
                continue;
            }

            // Ban: edges leaving the spur node on any accepted/candidate
            // path sharing this root, and all root nodes except the spur
            // (to keep the final path simple).
            // Root comparison uses the *edge* sequence: with parallel
            // edges two distinct roots share the same node prefix, and
            // banning across them loses paths.
            let root_edges = &prev.edges[..spur_idx];
            banned_edges.clear();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > spur_idx && p.edges[..spur_idx] == *root_edges {
                    banned_edges.insert(p.edges[spur_idx]);
                }
            }
            banned_nodes.clear();
            banned_nodes.extend(prev.nodes[..spur_idx].iter().copied());

            let spur_cfg = DijkstraConfig {
                edge_cost: |e: EdgeRef<'_, E>| {
                    if banned_edges.contains(&e.id)
                        || banned_nodes.contains(&e.a)
                        || banned_nodes.contains(&e.b)
                    {
                        f64::INFINITY
                    } else {
                        (config.edge_cost)(e)
                    }
                },
                can_relay: |n: NodeId| !banned_nodes.contains(&n) && (config.can_relay)(n),
            };
            expansions += 1;
            let Some(spur_path) = dijkstra_into(ws, g, spur_node, &spur_cfg).path_to(target) else {
                continue;
            };

            // Stitch root + spur; the cost is the root prefix plus the
            // spur search's own accumulated cost.
            let prev = accepted.last().expect("at least one accepted path");
            let mut nodes = prev.nodes[..=spur_idx].to_vec();
            nodes.extend_from_slice(&spur_path.nodes[1..]);
            let mut edges = prev.edges[..spur_idx].to_vec();
            edges.extend_from_slice(&spur_path.edges);
            let cost = root_cost[spur_idx] + spur_path.cost;
            let candidate = Path { nodes, edges, cost };

            // Deduplicate (same edge sequence).
            let duplicate = accepted
                .iter()
                .chain(candidates.iter())
                .any(|p| p.edges == candidate.edges);
            if !duplicate {
                let at = candidates
                    .binary_search_by(|p| path_order(&candidate, p))
                    .unwrap_or_else(|i| i);
                candidates.insert(at, candidate);
            }
        }

        // Pop the cheapest candidate.
        let Some(next) = candidates.pop() else {
            break;
        };
        accepted.push(next);
    }
    qnet_obs::counter!("graph.ksp.spur_expansions"; expansions);
    qnet_obs::counter!("graph.ksp.spur_pruned"; pruned);
    qnet_obs::counter!("graph.ksp.paths_generated"; accepted.len() as u64);
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// Classic Yen example shape: multiple routes of distinct costs.
    ///   0 -1- 1 -1- 3
    ///   0 -2- 2 -1- 3
    ///   1 -1- 2,  0 -5- 3
    fn diamond() -> (Graph<(), f64>, [NodeId; 4]) {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 1.0);
        g.add_edge(n[1], n[3], 1.0);
        g.add_edge(n[0], n[2], 2.0);
        g.add_edge(n[2], n[3], 1.0);
        g.add_edge(n[1], n[2], 1.0);
        g.add_edge(n[0], n[3], 5.0);
        (g, [n[0], n[1], n[2], n[3]])
    }

    #[test]
    fn finds_paths_in_cost_order() {
        let (g, [s, _, _, t]) = diamond();
        let paths = k_shortest_paths(&g, s, t, 10, &DijkstraConfig::all_nodes(cost));
        assert!(paths.len() >= 4);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
        assert_eq!(paths[0].cost, 2.0); // 0-1-3
        assert_eq!(paths[1].cost, 3.0); // 0-2-3 or 0-1-2-3
    }

    #[test]
    fn paths_are_simple_and_distinct() {
        let (g, [s, _, _, t]) = diamond();
        let paths = k_shortest_paths(&g, s, t, 10, &DijkstraConfig::all_nodes(cost));
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.edges.clone()), "duplicate path");
            let mut nodes = p.nodes.clone();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes.len(), "loopy path");
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), t);
        }
    }

    #[test]
    fn matches_bruteforce_enumeration() {
        let (g, [s, _, _, t]) = diamond();
        // Brute force: all simple paths s→t.
        fn all_paths(
            g: &Graph<(), f64>,
            cur: NodeId,
            t: NodeId,
            visited: &mut Vec<NodeId>,
            edges: &mut Vec<EdgeId>,
            out: &mut Vec<(f64, Vec<EdgeId>)>,
        ) {
            if cur == t {
                let c = edges.iter().map(|&e| *g.edge(e).payload).sum();
                out.push((c, edges.clone()));
                return;
            }
            for (next, eid) in g.neighbors(cur) {
                if !visited.contains(&next) {
                    visited.push(next);
                    edges.push(eid);
                    all_paths(g, next, t, visited, edges, out);
                    edges.pop();
                    visited.pop();
                }
            }
        }
        let mut brute = Vec::new();
        all_paths(&g, s, t, &mut vec![s], &mut Vec::new(), &mut brute);
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let yen = k_shortest_paths(&g, s, t, brute.len() + 5, &DijkstraConfig::all_nodes(cost));
        assert_eq!(yen.len(), brute.len(), "yen must find every simple path");
        for (p, (c, _)) in yen.iter().zip(&brute) {
            assert!((p.cost - c).abs() < 1e-12, "cost sequence must match");
        }
    }

    #[test]
    fn respects_relay_filter() {
        let (g, [s, n1, _, t]) = diamond();
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: |n: NodeId| n != n1,
        };
        let paths = k_shortest_paths(&g, s, t, 10, &cfg);
        for p in &paths {
            assert!(!p.interior().contains(&n1), "forbidden interior {p:?}");
        }
        // Direct 0-3 and 0-2-3 remain.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn k_zero_and_same_endpoints() {
        let (g, [s, _, _, t]) = diamond();
        assert!(k_shortest_paths(&g, s, t, 0, &DijkstraConfig::all_nodes(cost)).is_empty());
        assert!(k_shortest_paths(&g, s, s, 3, &DijkstraConfig::all_nodes(cost)).is_empty());
    }

    #[test]
    fn disconnected_yields_empty() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(k_shortest_paths(&g, a, b, 3, &DijkstraConfig::all_nodes(cost)).is_empty());
    }

    #[test]
    fn parallel_edges_are_distinct_paths() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        let paths = k_shortest_paths(&g, a, b, 5, &DijkstraConfig::all_nodes(cost));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost, 1.0);
        assert_eq!(paths[1].cost, 2.0);
    }
}
