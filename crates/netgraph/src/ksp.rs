//! Yen's algorithm: the k cheapest loopless paths between two vertices.
//!
//! Used by the MUERP local-search extension to enumerate *alternative*
//! quantum channels for a user pair — the capacity-aware tree improvement
//! needs more than the single best channel Algorithm 1 yields.
//!
//! The implementation honors the same vertex semantics as
//! [`crate::dijkstra`]: a `can_relay` filter restricts which vertices may
//! appear in a path's *interior*, so the k-best channels all remain valid
//! MUERP channels.

use std::cmp::Ordering;
use std::collections::HashSet;

use qnet_pool::Pool;

use crate::csr::Adjacency;
use crate::graph::{EdgeId, EdgeRef, Graph, NodeId};
use crate::paths::{dijkstra_adj_into, DijkstraConfig, DijkstraWorkspace, Path};

/// Candidate ordering: cheapest first, ties broken by the edge sequence
/// for determinism.
fn path_order(a: &Path, b: &Path) -> Ordering {
    a.cost
        .partial_cmp(&b.cost)
        .expect("costs are not NaN")
        .then_with(|| a.edges.cmp(&b.edges))
}

/// The `k` cheapest loopless paths from `source` to `target` under the
/// given cost and relay filter, sorted by cost ascending.
///
/// Convenience wrapper over [`k_shortest_paths_in`] that allocates a
/// private [`DijkstraWorkspace`]; callers issuing many KSP queries
/// should hold a workspace and use the `_in` variant.
///
/// Fewer than `k` paths are returned when the graph does not contain
/// that many distinct admissible simple paths. `k = 0` returns an empty
/// vector.
///
/// # Panics
///
/// Panics if `edge_cost` produces negative or NaN values (inherited from
/// [`crate::dijkstra`]).
pub fn k_shortest_paths<N, E, FC, FR>(
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    let mut ws = DijkstraWorkspace::new();
    k_shortest_paths_in(&mut ws, g, source, target, k, config)
}

/// Yen's algorithm on a caller-provided [`DijkstraWorkspace`]: every
/// spur search reuses the workspace's arrays and heap, so one KSP query
/// performs no per-spur allocation beyond the paths it reports.
///
/// Two further optimizations over the textbook formulation:
///
/// * **Root-cost bookkeeping** — a candidate's cost is the prefix sum of
///   its root plus the spur search's accumulated cost; edge costs are
///   never re-summed over the whole stitched path.
/// * **Root-path cost pruning** — with `m` accepted slots left and at
///   least `m` pending candidates, a spur whose root already costs
///   strictly more than the `m`-th cheapest pending candidate cannot
///   contribute an accepted path (every future pick is at most that
///   bound), so the spur search is skipped entirely. The strict
///   inequality keeps equal-cost path sets intact.
pub fn k_shortest_paths_in<N, E, FC, FR>(
    ws: &mut DijkstraWorkspace,
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    k_shortest_paths_adj_in(ws, g, g, source, target, k, config)
}

/// [`k_shortest_paths_in`] over an explicit [`Adjacency`] (the graph
/// itself or a [`crate::CsrGraph`] frozen from it): identical semantics
/// and bitwise-identical results, since every spur search iterates
/// neighbors in the same order on either layout.
pub fn k_shortest_paths_adj_in<A, N, E, FC, FR>(
    ws: &mut DijkstraWorkspace,
    adj: &A,
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    A: Adjacency + ?Sized,
    FC: Fn(EdgeRef<'_, E>) -> f64,
    FR: Fn(NodeId) -> bool,
{
    qnet_obs::counter!("graph.ksp.calls");
    let _span = qnet_obs::span!("graph.ksp.solve");
    if k == 0 || source == target {
        return Vec::new();
    }
    let mut accepted: Vec<Path> = Vec::with_capacity(k);
    // Sorted *descending* by (cost, edges): the cheapest candidate pops
    // from the back in O(1), and the pruning bound below indexes the
    // m-th cheapest directly.
    let mut candidates: Vec<Path> = Vec::new();
    let mut expansions: u64 = 0;
    let mut pruned: u64 = 0;
    // Ban sets are reused (cleared, not reallocated) across spurs.
    let mut banned_edges: HashSet<EdgeId> = HashSet::new();
    let mut banned_nodes: HashSet<NodeId> = HashSet::new();
    // Prefix sums of the previous accepted path's edge costs:
    // root_cost[i] = cost of its first i edges, summed left to right —
    // bitwise identical to the sequential sum Dijkstra itself computes.
    let mut root_cost: Vec<f64> = Vec::new();

    let Some(first) = dijkstra_adj_into(ws, adj, g, source, config).path_to(target) else {
        return Vec::new();
    };
    accepted.push(first);

    while accepted.len() < k {
        // One spur round: every prefix position of the latest accepted
        // path. The nested dijkstra spans attribute the round's cost.
        let _round = qnet_obs::span!("graph.ksp.spur_round");
        let prev = accepted.last().expect("at least one accepted path");
        root_cost.clear();
        root_cost.push(0.0);
        for &e in &prev.edges {
            root_cost.push(root_cost.last().unwrap() + (config.edge_cost)(g.edge(e)));
        }

        // Spur from every prefix position of the previous path. Indexed
        // loop: `prev` must be re-borrowed each iteration because the
        // ban sets the spur config closes over are rebuilt in the body.
        #[allow(clippy::needless_range_loop)]
        for spur_idx in 0..prev.nodes.len() - 1 {
            let prev = accepted.last().expect("at least one accepted path");
            let spur_node = prev.nodes[spur_idx];

            // The spur node must be admissible at its position in the
            // final path: as source (spur_idx == 0) it always is; as an
            // interior vertex it must pass the relay filter.
            if spur_idx > 0 && !(config.can_relay)(spur_node) {
                continue;
            }

            // Root-path cost pruning (see the function docs for why the
            // strict bound is safe).
            let remaining = k - accepted.len();
            if candidates.len() >= remaining
                && root_cost[spur_idx] > candidates[candidates.len() - remaining].cost
            {
                pruned += 1;
                continue;
            }

            // Ban: edges leaving the spur node on any accepted/candidate
            // path sharing this root, and all root nodes except the spur
            // (to keep the final path simple).
            // Root comparison uses the *edge* sequence: with parallel
            // edges two distinct roots share the same node prefix, and
            // banning across them loses paths.
            let root_edges = &prev.edges[..spur_idx];
            banned_edges.clear();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.edges.len() > spur_idx && p.edges[..spur_idx] == *root_edges {
                    banned_edges.insert(p.edges[spur_idx]);
                }
            }
            banned_nodes.clear();
            banned_nodes.extend(prev.nodes[..spur_idx].iter().copied());

            let spur_cfg = DijkstraConfig {
                edge_cost: |e: EdgeRef<'_, E>| {
                    if banned_edges.contains(&e.id)
                        || banned_nodes.contains(&e.a)
                        || banned_nodes.contains(&e.b)
                    {
                        f64::INFINITY
                    } else {
                        (config.edge_cost)(e)
                    }
                },
                can_relay: |n: NodeId| !banned_nodes.contains(&n) && (config.can_relay)(n),
            };
            expansions += 1;
            let Some(spur_path) =
                dijkstra_adj_into(ws, adj, g, spur_node, &spur_cfg).path_to(target)
            else {
                continue;
            };

            // Stitch root + spur; the cost is the root prefix plus the
            // spur search's own accumulated cost.
            let prev = accepted.last().expect("at least one accepted path");
            let mut nodes = prev.nodes[..=spur_idx].to_vec();
            nodes.extend_from_slice(&spur_path.nodes[1..]);
            let mut edges = prev.edges[..spur_idx].to_vec();
            edges.extend_from_slice(&spur_path.edges);
            let cost = root_cost[spur_idx] + spur_path.cost;
            let candidate = Path { nodes, edges, cost };

            // Deduplicate (same edge sequence).
            let duplicate = accepted
                .iter()
                .chain(candidates.iter())
                .any(|p| p.edges == candidate.edges);
            if !duplicate {
                let at = candidates
                    .binary_search_by(|p| path_order(&candidate, p))
                    .unwrap_or_else(|i| i);
                candidates.insert(at, candidate);
            }
        }

        // Pop the cheapest candidate.
        let Some(next) = candidates.pop() else {
            break;
        };
        accepted.push(next);
    }
    qnet_obs::counter!("graph.ksp.spur_expansions"; expansions);
    qnet_obs::counter!("graph.ksp.spur_pruned"; pruned);
    qnet_obs::counter!("graph.ksp.paths_generated"; accepted.len() as u64);
    accepted
}

/// Yen's algorithm with each round's spur searches fanned out over a
/// [`Pool`] — **bitwise identical** to [`k_shortest_paths_adj_in`] at
/// every thread count.
///
/// Why parallel spurs are safe: within one round every spur search is a
/// function of the *round-start snapshot* (accepted paths, pending
/// candidates, the latest accepted path). In the sequential algorithm a
/// candidate produced at spur `i` could in principle influence later
/// spurs `j > i` through three couplings, and each one provably cannot
/// fire or is replayed exactly:
///
/// 1. **Ban sets.** A spur-`i` candidate deviates from the previous
///    path at edge `i` (its own root edge is banned during the spur
///    search), so its `..j` edge prefix differs from spur `j`'s root at
///    position `i < j` — it never matches the prefix filter and never
///    contributes a ban. Snapshot ban sets therefore equal live ones.
/// 2. **Pruning.** The root-cost bound only *tightens* as candidates
///    accumulate, so a spur admitted under the snapshot may still be
///    pruned live — the merge below replays the exact sequential prune
///    check, in spur order, against the live candidate list, and
///    discards the already-computed search result of any spur the
///    sequential algorithm would have skipped (tallied under
///    `graph.ksp.spur_wasted`). A spur pruned under the snapshot is
///    pruned live a fortiori, so skipping its search is always sound.
/// 3. **Deduplication.** Two same-round candidates deviate from the
///    previous path at different positions, so their edge sequences
///    differ; duplicates can only involve snapshot paths, and the merge
///    replays the live dedup check in spur order anyway.
///
/// The merge therefore evolves the candidate list exactly as the
/// sequential loop does; only the (side-effect-free) spur searches run
/// concurrently. Worker scratch workspaces come from the pool's
/// per-worker context factory. With a sequential pool this function
/// simply delegates to [`k_shortest_paths_adj_in`] on the caller's
/// workspace.
///
/// # Panics
///
/// Panics if `edge_cost` produces negative or NaN values (inherited
/// from [`crate::dijkstra`]) and propagates worker panics.
#[allow(clippy::too_many_arguments)]
pub fn k_shortest_paths_pooled_in<A, N, E, FC, FR>(
    pool: &Pool,
    ws: &mut DijkstraWorkspace,
    adj: &A,
    g: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    config: &DijkstraConfig<FC, FR>,
) -> Vec<Path>
where
    A: Adjacency + Sync + ?Sized,
    N: Sync,
    E: Sync,
    FC: Fn(EdgeRef<'_, E>) -> f64 + Sync,
    FR: Fn(NodeId) -> bool + Sync,
{
    if pool.is_sequential() {
        return k_shortest_paths_adj_in(ws, adj, g, source, target, k, config);
    }
    qnet_obs::counter!("graph.ksp.calls");
    let _span = qnet_obs::span!("graph.ksp.solve");
    if k == 0 || source == target {
        return Vec::new();
    }
    let mut accepted: Vec<Path> = Vec::with_capacity(k);
    let mut candidates: Vec<Path> = Vec::new();
    let mut expansions: u64 = 0;
    let mut pruned: u64 = 0;
    let mut wasted: u64 = 0;
    let mut root_cost: Vec<f64> = Vec::new();

    let Some(first) = dijkstra_adj_into(ws, adj, g, source, config).path_to(target) else {
        return Vec::new();
    };
    accepted.push(first);

    while accepted.len() < k {
        let _round = qnet_obs::span!("graph.ksp.spur_round");
        let prev = accepted.last().expect("at least one accepted path");
        root_cost.clear();
        root_cost.push(0.0);
        for &e in &prev.edges {
            root_cost.push(root_cost.last().unwrap() + (config.edge_cost)(g.edge(e)));
        }
        let remaining = k - accepted.len();

        // Snapshot phase: select the spurs worth searching. Inadmissible
        // spur nodes are skipped outright; the snapshot prune is a sound
        // pre-filter (see the function docs) whose tally is finalized in
        // the merge below.
        let mut jobs: Vec<usize> = Vec::new();
        for (spur_idx, &spur_node) in prev.nodes[..prev.nodes.len() - 1].iter().enumerate() {
            if spur_idx > 0 && !(config.can_relay)(spur_node) {
                continue;
            }
            if candidates.len() >= remaining
                && root_cost[spur_idx] > candidates[candidates.len() - remaining].cost
            {
                pruned += 1;
                continue;
            }
            jobs.push(spur_idx);
        }

        // Parallel phase: every selected spur searched against the
        // snapshot, each worker on its own workspace.
        let order = adj.order();
        let (accepted_s, candidates_s, prev_s, root_cost_s) =
            (&accepted, &candidates, prev, &root_cost);
        let spur_results: Vec<(usize, Option<Path>)> = pool.map(
            jobs,
            || DijkstraWorkspace::with_capacity(order),
            |sws, spur_idx, _| {
                let spur_node = prev_s.nodes[spur_idx];
                let root_edges = &prev_s.edges[..spur_idx];
                let mut banned_edges: HashSet<EdgeId> = HashSet::new();
                for p in accepted_s.iter().chain(candidates_s.iter()) {
                    if p.edges.len() > spur_idx && p.edges[..spur_idx] == *root_edges {
                        banned_edges.insert(p.edges[spur_idx]);
                    }
                }
                let banned_nodes: HashSet<NodeId> =
                    prev_s.nodes[..spur_idx].iter().copied().collect();
                let spur_cfg = DijkstraConfig {
                    edge_cost: |e: EdgeRef<'_, E>| {
                        if banned_edges.contains(&e.id)
                            || banned_nodes.contains(&e.a)
                            || banned_nodes.contains(&e.b)
                        {
                            f64::INFINITY
                        } else {
                            (config.edge_cost)(e)
                        }
                    },
                    can_relay: |n: NodeId| !banned_nodes.contains(&n) && (config.can_relay)(n),
                };
                let candidate = dijkstra_adj_into(sws, adj, g, spur_node, &spur_cfg)
                    .path_to(target)
                    .map(|spur_path| {
                        let mut nodes = prev_s.nodes[..=spur_idx].to_vec();
                        nodes.extend_from_slice(&spur_path.nodes[1..]);
                        let mut edges = prev_s.edges[..spur_idx].to_vec();
                        edges.extend_from_slice(&spur_path.edges);
                        Path {
                            nodes,
                            edges,
                            cost: root_cost_s[spur_idx] + spur_path.cost,
                        }
                    });
                (spur_idx, candidate)
            },
        );

        // Merge phase: replay the sequential prune/dedup/insert, in spur
        // order, against the live candidate list.
        for (spur_idx, candidate) in spur_results {
            if candidates.len() >= remaining
                && root_cost[spur_idx] > candidates[candidates.len() - remaining].cost
            {
                // Sequential would have skipped this search; its result
                // was computed speculatively and is discarded.
                pruned += 1;
                wasted += 1;
                continue;
            }
            expansions += 1;
            let Some(candidate) = candidate else { continue };
            let duplicate = accepted
                .iter()
                .chain(candidates.iter())
                .any(|p| p.edges == candidate.edges);
            if !duplicate {
                let at = candidates
                    .binary_search_by(|p| path_order(&candidate, p))
                    .unwrap_or_else(|i| i);
                candidates.insert(at, candidate);
            }
        }

        let Some(next) = candidates.pop() else {
            break;
        };
        accepted.push(next);
    }
    qnet_obs::counter!("graph.ksp.spur_expansions"; expansions);
    qnet_obs::counter!("graph.ksp.spur_pruned"; pruned);
    qnet_obs::counter!("graph.ksp.spur_wasted"; wasted);
    qnet_obs::counter!("graph.ksp.paths_generated"; accepted.len() as u64);
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(e: EdgeRef<'_, f64>) -> f64 {
        *e.payload
    }

    /// Classic Yen example shape: multiple routes of distinct costs.
    ///   0 -1- 1 -1- 3
    ///   0 -2- 2 -1- 3
    ///   1 -1- 2,  0 -5- 3
    fn diamond() -> (Graph<(), f64>, [NodeId; 4]) {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 1.0);
        g.add_edge(n[1], n[3], 1.0);
        g.add_edge(n[0], n[2], 2.0);
        g.add_edge(n[2], n[3], 1.0);
        g.add_edge(n[1], n[2], 1.0);
        g.add_edge(n[0], n[3], 5.0);
        (g, [n[0], n[1], n[2], n[3]])
    }

    #[test]
    fn finds_paths_in_cost_order() {
        let (g, [s, _, _, t]) = diamond();
        let paths = k_shortest_paths(&g, s, t, 10, &DijkstraConfig::all_nodes(cost));
        assert!(paths.len() >= 4);
        for w in paths.windows(2) {
            assert!(w[0].cost <= w[1].cost + 1e-12);
        }
        assert_eq!(paths[0].cost, 2.0); // 0-1-3
        assert_eq!(paths[1].cost, 3.0); // 0-2-3 or 0-1-2-3
    }

    #[test]
    fn paths_are_simple_and_distinct() {
        let (g, [s, _, _, t]) = diamond();
        let paths = k_shortest_paths(&g, s, t, 10, &DijkstraConfig::all_nodes(cost));
        let mut seen = HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.edges.clone()), "duplicate path");
            let mut nodes = p.nodes.clone();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), p.nodes.len(), "loopy path");
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), t);
        }
    }

    #[test]
    fn matches_bruteforce_enumeration() {
        let (g, [s, _, _, t]) = diamond();
        // Brute force: all simple paths s→t.
        fn all_paths(
            g: &Graph<(), f64>,
            cur: NodeId,
            t: NodeId,
            visited: &mut Vec<NodeId>,
            edges: &mut Vec<EdgeId>,
            out: &mut Vec<(f64, Vec<EdgeId>)>,
        ) {
            if cur == t {
                let c = edges.iter().map(|&e| *g.edge(e).payload).sum();
                out.push((c, edges.clone()));
                return;
            }
            for (next, eid) in g.neighbors(cur) {
                if !visited.contains(&next) {
                    visited.push(next);
                    edges.push(eid);
                    all_paths(g, next, t, visited, edges, out);
                    edges.pop();
                    visited.pop();
                }
            }
        }
        let mut brute = Vec::new();
        all_paths(&g, s, t, &mut vec![s], &mut Vec::new(), &mut brute);
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let yen = k_shortest_paths(&g, s, t, brute.len() + 5, &DijkstraConfig::all_nodes(cost));
        assert_eq!(yen.len(), brute.len(), "yen must find every simple path");
        for (p, (c, _)) in yen.iter().zip(&brute) {
            assert!((p.cost - c).abs() < 1e-12, "cost sequence must match");
        }
    }

    #[test]
    fn respects_relay_filter() {
        let (g, [s, n1, _, t]) = diamond();
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: |n: NodeId| n != n1,
        };
        let paths = k_shortest_paths(&g, s, t, 10, &cfg);
        for p in &paths {
            assert!(!p.interior().contains(&n1), "forbidden interior {p:?}");
        }
        // Direct 0-3 and 0-2-3 remain.
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn k_zero_and_same_endpoints() {
        let (g, [s, _, _, t]) = diamond();
        assert!(k_shortest_paths(&g, s, t, 0, &DijkstraConfig::all_nodes(cost)).is_empty());
        assert!(k_shortest_paths(&g, s, s, 3, &DijkstraConfig::all_nodes(cost)).is_empty());
    }

    #[test]
    fn disconnected_yields_empty() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(k_shortest_paths(&g, a, b, 3, &DijkstraConfig::all_nodes(cost)).is_empty());
    }

    #[test]
    fn pooled_matches_sequential_bitwise() {
        let (g, [s, _, _, t]) = diamond();
        let csr = crate::CsrGraph::from_graph(&g);
        let cfg = DijkstraConfig::all_nodes(cost);
        for k in [1, 3, 10] {
            let mut ws = DijkstraWorkspace::new();
            let seq = k_shortest_paths_in(&mut ws, &g, s, t, k, &cfg);
            for threads in [1, 2, 4] {
                let pool = Pool::with_threads(threads);
                let mut ws = DijkstraWorkspace::new();
                let pooled = k_shortest_paths_pooled_in(&pool, &mut ws, &csr, &g, s, t, k, &cfg);
                assert_eq!(seq, pooled, "k={k} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_respects_relay_filter_and_edge_cases() {
        let (g, [s, n1, _, t]) = diamond();
        let cfg = DijkstraConfig {
            edge_cost: cost,
            can_relay: |n: NodeId| n != n1,
        };
        let pool = Pool::with_threads(3);
        let mut ws = DijkstraWorkspace::new();
        let paths = k_shortest_paths_pooled_in(&pool, &mut ws, &g, &g, s, t, 10, &cfg);
        let mut ws2 = DijkstraWorkspace::new();
        assert_eq!(paths, k_shortest_paths_in(&mut ws2, &g, s, t, 10, &cfg));
        assert!(k_shortest_paths_pooled_in(&pool, &mut ws, &g, &g, s, t, 0, &cfg).is_empty());
        assert!(k_shortest_paths_pooled_in(&pool, &mut ws, &g, &g, s, s, 4, &cfg).is_empty());
    }

    #[test]
    fn csr_adjacency_matches_graph_adjacency() {
        let (g, [s, _, _, t]) = diamond();
        let csr = crate::CsrGraph::from_graph(&g);
        let cfg = DijkstraConfig::all_nodes(cost);
        let mut ws = DijkstraWorkspace::new();
        let on_graph = k_shortest_paths_in(&mut ws, &g, s, t, 10, &cfg);
        let on_csr = k_shortest_paths_adj_in(&mut ws, &csr, &g, s, t, 10, &cfg);
        assert_eq!(on_graph, on_csr);
    }

    #[test]
    fn parallel_edges_are_distinct_paths() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(a, b, 2.0);
        let paths = k_shortest_paths(&g, a, b, 5, &DijkstraConfig::all_nodes(cost));
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost, 1.0);
        assert_eq!(paths[1].cost, 2.0);
    }
}
