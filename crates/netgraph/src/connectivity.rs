//! Connectivity analysis: components, bridges, articulation points.
//!
//! The paper's Fig. 7(b) removes optical fibers uniformly at random and
//! observes that performance "is mainly affected by some critical edges in
//! the network structure". In graph terms those critical edges are
//! *bridges* (cut edges): removing one disconnects a component. This module
//! provides the machinery to find them ([`bridges`]) alongside plain
//! component analysis used throughout the workspace.

use crate::graph::{EdgeId, Graph, NodeId};

/// Assigns every node a component label `0..k` and returns
/// `(labels, component_count)`.
pub fn connected_components<N, E>(g: &Graph<N, E>) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for start in g.node_ids() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        label[start.index()] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if label[u.index()] == usize::MAX {
                    label[u.index()] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// `true` when the graph is connected (an empty graph counts as connected).
pub fn is_connected<N, E>(g: &Graph<N, E>) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    connected_components(g).1 == 1
}

/// `true` when every node in `nodes` lies in one connected component.
///
/// An empty or singleton slice is trivially connected.
pub fn nodes_connected<N, E>(g: &Graph<N, E>, nodes: &[NodeId]) -> bool {
    let Some((&first, rest)) = nodes.split_first() else {
        return true;
    };
    let (labels, _) = connected_components(g);
    rest.iter()
        .all(|n| labels[n.index()] == labels[first.index()])
}

/// Iterative Tarjan bridge/articulation computation state.
struct LowLink {
    disc: Vec<u32>,
    low: Vec<u32>,
    timer: u32,
    bridges: Vec<EdgeId>,
    articulation: Vec<bool>,
}

/// Finds all bridges (cut edges) of the graph.
///
/// A bridge is an edge whose removal increases the number of connected
/// components. Parallel edges are handled correctly: two parallel edges
/// between the same endpoints are never bridges.
///
/// # Example
///
/// ```
/// use qnet_graph::Graph;
/// use qnet_graph::connectivity::bridges;
///
/// // triangle a-b-c plus pendant edge c-d: only c-d is a bridge
/// let mut g: Graph<(), ()> = Graph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// let d = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, c, ());
/// g.add_edge(c, a, ());
/// let cd = g.add_edge(c, d, ());
/// assert_eq!(bridges(&g), vec![cd]);
/// ```
pub fn bridges<N, E>(g: &Graph<N, E>) -> Vec<EdgeId> {
    low_link(g).bridges
}

/// Finds all articulation points (cut vertices) of the graph.
pub fn articulation_points<N, E>(g: &Graph<N, E>) -> Vec<NodeId> {
    low_link(g)
        .articulation
        .iter()
        .enumerate()
        .filter(|(_, &is_ap)| is_ap)
        .map(|(i, _)| NodeId::new(i))
        .collect()
}

fn low_link<N, E>(g: &Graph<N, E>) -> LowLink {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut st = LowLink {
        disc: vec![UNVISITED; n],
        low: vec![UNVISITED; n],
        timer: 0,
        bridges: Vec::new(),
        articulation: vec![false; n],
    };

    // Iterative DFS: each frame is (node, parent_edge, neighbor cursor).
    for root in g.node_ids() {
        if st.disc[root.index()] != UNVISITED {
            continue;
        }
        let mut root_children = 0usize;
        let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = Vec::new();
        st.disc[root.index()] = st.timer;
        st.low[root.index()] = st.timer;
        st.timer += 1;
        stack.push((root, None, 0));

        while let Some(top) = stack.last_mut() {
            let (v, parent_edge) = (top.0, top.1);
            let cursor = top.2;
            if cursor < g.degree(v) {
                top.2 += 1;
                let (u, eid) = g
                    .neighbors(v)
                    .nth(cursor)
                    .expect("cursor bounded by degree");
                if Some(eid) == parent_edge {
                    continue; // skip the tree edge back; parallel edges have different ids
                }
                if st.disc[u.index()] == UNVISITED {
                    st.disc[u.index()] = st.timer;
                    st.low[u.index()] = st.timer;
                    st.timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((u, Some(eid), 0));
                } else {
                    // Back edge.
                    let du = st.disc[u.index()];
                    if du < st.low[v.index()] {
                        st.low[v.index()] = du;
                    }
                }
            } else {
                // Finished v: propagate low-link to parent.
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    let lv = st.low[v.index()];
                    if lv < st.low[p.index()] {
                        st.low[p.index()] = lv;
                    }
                    if lv > st.disc[p.index()] {
                        st.bridges
                            .push(parent_edge.expect("non-root has a parent edge"));
                    }
                    if p != root && lv >= st.disc[p.index()] {
                        st.articulation[p.index()] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            st.articulation[root.index()] = true;
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph<(), ()> {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    fn cycle_graph(n: usize) -> Graph<(), ()> {
        let mut g = path_graph(n);
        g.add_edge(NodeId::new(n - 1), NodeId::new(0), ());
        g
    }

    #[test]
    fn components_of_disjoint_parts() {
        let mut g = path_graph(3);
        g.add_node(()); // isolated node
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        let g: Graph<(), ()> = Graph::new();
        assert!(is_connected(&g));
        let mut g2: Graph<(), ()> = Graph::new();
        g2.add_node(());
        assert!(is_connected(&g2));
    }

    #[test]
    fn nodes_connected_subsets() {
        let mut g = path_graph(3);
        let iso = g.add_node(());
        assert!(nodes_connected(&g, &[]));
        assert!(nodes_connected(&g, &[iso]));
        assert!(nodes_connected(&g, &[NodeId::new(0), NodeId::new(2)]));
        assert!(!nodes_connected(&g, &[NodeId::new(0), iso]));
    }

    #[test]
    fn every_edge_of_a_path_is_a_bridge() {
        let g = path_graph(5);
        let mut b = bridges(&g);
        b.sort();
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = cycle_graph(5);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn pendant_edge_on_cycle() {
        let mut g = cycle_graph(4);
        let d = g.add_node(());
        let pendant = g.add_edge(NodeId::new(0), d, ());
        assert_eq!(bridges(&g), vec![pendant]);
        assert_eq!(articulation_points(&g), vec![NodeId::new(0)]);
    }

    #[test]
    fn parallel_edges_are_never_bridges() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn barbell_articulation() {
        // Two triangles joined at one shared vertex -> that vertex cuts.
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[2], ids[0], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[4], ());
        g.add_edge(ids[4], ids[2], ());
        assert_eq!(articulation_points(&g), vec![ids[2]]);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn bridges_agree_with_bruteforce_removal() {
        // Deterministic small graph; compare Tarjan against removal test.
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..7).map(|_| g.add_node(())).collect();
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
        ];
        for (a, b) in pairs {
            g.add_edge(ids[a], ids[b], ());
        }
        let (_, base_components) = connected_components(&g);
        let mut expected = Vec::new();
        for e in g.edge_ids() {
            let without = g.filter_edges(|er| er.id != e);
            if connected_components(&without).1 > base_components {
                expected.push(e);
            }
        }
        let mut got = bridges(&g);
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }
}
