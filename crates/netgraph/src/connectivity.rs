//! Connectivity analysis: components, bridges, articulation points.
//!
//! The paper's Fig. 7(b) removes optical fibers uniformly at random and
//! observes that performance "is mainly affected by some critical edges in
//! the network structure". In graph terms those critical edges are
//! *bridges* (cut edges): removing one disconnects a component. This module
//! provides the machinery to find them ([`bridges`]) alongside plain
//! component analysis used throughout the workspace.

use crate::graph::{EdgeId, Graph, NodeId};

/// Assigns every node a component label `0..k` and returns
/// `(labels, component_count)`.
pub fn connected_components<N, E>(g: &Graph<N, E>) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0;
    let mut stack = Vec::new();
    for start in g.node_ids() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        label[start.index()] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for (u, _) in g.neighbors(v) {
                if label[u.index()] == usize::MAX {
                    label[u.index()] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// `true` when the graph is connected (an empty graph counts as connected).
pub fn is_connected<N, E>(g: &Graph<N, E>) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    connected_components(g).1 == 1
}

/// `true` when every node in `nodes` lies in one connected component.
///
/// An empty or singleton slice is trivially connected.
pub fn nodes_connected<N, E>(g: &Graph<N, E>, nodes: &[NodeId]) -> bool {
    let Some((&first, rest)) = nodes.split_first() else {
        return true;
    };
    let (labels, _) = connected_components(g);
    rest.iter()
        .all(|n| labels[n.index()] == labels[first.index()])
}

/// Iterative Tarjan bridge/articulation computation state.
struct LowLink {
    disc: Vec<u32>,
    low: Vec<u32>,
    timer: u32,
    bridges: Vec<EdgeId>,
    articulation: Vec<bool>,
}

/// Finds all bridges (cut edges) of the graph.
///
/// A bridge is an edge whose removal increases the number of connected
/// components. Parallel edges are handled correctly: two parallel edges
/// between the same endpoints are never bridges.
///
/// # Example
///
/// ```
/// use qnet_graph::Graph;
/// use qnet_graph::connectivity::bridges;
///
/// // triangle a-b-c plus pendant edge c-d: only c-d is a bridge
/// let mut g: Graph<(), ()> = Graph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// let d = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, c, ());
/// g.add_edge(c, a, ());
/// let cd = g.add_edge(c, d, ());
/// assert_eq!(bridges(&g), vec![cd]);
/// ```
pub fn bridges<N, E>(g: &Graph<N, E>) -> Vec<EdgeId> {
    low_link(g).bridges
}

/// Finds all articulation points (cut vertices) of the graph.
pub fn articulation_points<N, E>(g: &Graph<N, E>) -> Vec<NodeId> {
    low_link(g)
        .articulation
        .iter()
        .enumerate()
        .filter(|(_, &is_ap)| is_ap)
        .map(|(i, _)| NodeId::new(i))
        .collect()
}

/// One entry of a [`criticality`] report: a bridge edge and the number
/// of terminal pairs its failure severs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeCriticality {
    /// The bridge edge.
    pub edge: EdgeId,
    /// Terminal pairs that end up in different components when the edge
    /// is removed (`terminals on side A × terminals on side B`).
    pub severed_pairs: u64,
    /// Terminal counts on the two sides of the cut, larger side first.
    pub split: (usize, usize),
}

/// Ranks edges by survivability impact on a terminal set.
///
/// Only bridges can disconnect anything, so the report contains only
/// bridges — and only those whose removal actually separates at least
/// one pair of `terminals` (a bridge dangling away from every terminal
/// has no impact and is omitted). Entries are sorted by
/// `severed_pairs` descending, ties broken by edge id ascending, so the
/// ranking is deterministic.
///
/// Duplicate entries in `terminals` are counted once.
pub fn criticality<N, E>(g: &Graph<N, E>, terminals: &[NodeId]) -> Vec<EdgeCriticality> {
    let mut is_terminal = vec![false; g.node_count()];
    for &t in terminals {
        is_terminal[t.index()] = true;
    }
    let terminal_total = is_terminal.iter().filter(|&&t| t).count();
    if terminal_total < 2 {
        return Vec::new();
    }
    // Terminals per component: a bridge only severs pairs within its
    // own component.
    let (labels, component_count) = connected_components(g);
    let mut per_component = vec![0usize; component_count];
    for (i, &t) in is_terminal.iter().enumerate() {
        if t {
            per_component[labels[i]] += 1;
        }
    }

    let mut out = Vec::new();
    let mut stack = Vec::new();
    let mut visited = vec![false; g.node_count()];
    for bridge in bridges(g) {
        let (a, _) = g.endpoints(bridge);
        let in_component = per_component[labels[a.index()]];
        if in_component < 2 {
            continue;
        }
        // Count terminals reachable from `a` without crossing the
        // bridge; the rest of the component sits on b's side.
        visited.iter_mut().for_each(|v| *v = false);
        visited[a.index()] = true;
        stack.clear();
        stack.push(a);
        let mut side_a = 0usize;
        while let Some(v) = stack.pop() {
            if is_terminal[v.index()] {
                side_a += 1;
            }
            for (u, eid) in g.neighbors(v) {
                if eid != bridge && !visited[u.index()] {
                    visited[u.index()] = true;
                    stack.push(u);
                }
            }
        }
        let side_b = in_component - side_a;
        let severed = (side_a as u64) * (side_b as u64);
        if severed > 0 {
            out.push(EdgeCriticality {
                edge: bridge,
                severed_pairs: severed,
                split: (side_a.max(side_b), side_a.min(side_b)),
            });
        }
    }
    out.sort_by(|x, y| {
        y.severed_pairs
            .cmp(&x.severed_pairs)
            .then(x.edge.cmp(&y.edge))
    });
    out
}

fn low_link<N, E>(g: &Graph<N, E>) -> LowLink {
    const UNVISITED: u32 = u32::MAX;
    let n = g.node_count();
    let mut st = LowLink {
        disc: vec![UNVISITED; n],
        low: vec![UNVISITED; n],
        timer: 0,
        bridges: Vec::new(),
        articulation: vec![false; n],
    };

    // Iterative DFS: each frame is (node, parent_edge, neighbor cursor).
    for root in g.node_ids() {
        if st.disc[root.index()] != UNVISITED {
            continue;
        }
        let mut root_children = 0usize;
        let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = Vec::new();
        st.disc[root.index()] = st.timer;
        st.low[root.index()] = st.timer;
        st.timer += 1;
        stack.push((root, None, 0));

        while let Some(top) = stack.last_mut() {
            let (v, parent_edge) = (top.0, top.1);
            let cursor = top.2;
            if cursor < g.degree(v) {
                top.2 += 1;
                let (u, eid) = g
                    .neighbors(v)
                    .nth(cursor)
                    .expect("cursor bounded by degree");
                if Some(eid) == parent_edge {
                    continue; // skip the tree edge back; parallel edges have different ids
                }
                if st.disc[u.index()] == UNVISITED {
                    st.disc[u.index()] = st.timer;
                    st.low[u.index()] = st.timer;
                    st.timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((u, Some(eid), 0));
                } else {
                    // Back edge.
                    let du = st.disc[u.index()];
                    if du < st.low[v.index()] {
                        st.low[v.index()] = du;
                    }
                }
            } else {
                // Finished v: propagate low-link to parent.
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    let lv = st.low[v.index()];
                    if lv < st.low[p.index()] {
                        st.low[p.index()] = lv;
                    }
                    if lv > st.disc[p.index()] {
                        st.bridges
                            .push(parent_edge.expect("non-root has a parent edge"));
                    }
                    if p != root && lv >= st.disc[p.index()] {
                        st.articulation[p.index()] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            st.articulation[root.index()] = true;
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph<(), ()> {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        g
    }

    fn cycle_graph(n: usize) -> Graph<(), ()> {
        let mut g = path_graph(n);
        g.add_edge(NodeId::new(n - 1), NodeId::new(0), ());
        g
    }

    #[test]
    fn components_of_disjoint_parts() {
        let mut g = path_graph(3);
        g.add_node(()); // isolated node
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        let g: Graph<(), ()> = Graph::new();
        assert!(is_connected(&g));
        let mut g2: Graph<(), ()> = Graph::new();
        g2.add_node(());
        assert!(is_connected(&g2));
    }

    #[test]
    fn nodes_connected_subsets() {
        let mut g = path_graph(3);
        let iso = g.add_node(());
        assert!(nodes_connected(&g, &[]));
        assert!(nodes_connected(&g, &[iso]));
        assert!(nodes_connected(&g, &[NodeId::new(0), NodeId::new(2)]));
        assert!(!nodes_connected(&g, &[NodeId::new(0), iso]));
    }

    #[test]
    fn every_edge_of_a_path_is_a_bridge() {
        let g = path_graph(5);
        let mut b = bridges(&g);
        b.sort();
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = cycle_graph(5);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
    }

    #[test]
    fn pendant_edge_on_cycle() {
        let mut g = cycle_graph(4);
        let d = g.add_node(());
        let pendant = g.add_edge(NodeId::new(0), d, ());
        assert_eq!(bridges(&g), vec![pendant]);
        assert_eq!(articulation_points(&g), vec![NodeId::new(0)]);
    }

    #[test]
    fn parallel_edges_are_never_bridges() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, b, ());
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn barbell_articulation() {
        // Two triangles joined at one shared vertex -> that vertex cuts.
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[2], ids[0], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[4], ());
        g.add_edge(ids[4], ids[2], ());
        assert_eq!(articulation_points(&g), vec![ids[2]]);
        assert!(bridges(&g).is_empty());
    }

    /// Brute-force criticality: remove each edge in turn and count the
    /// terminal pairs that land in different components.
    fn bruteforce_criticality(g: &Graph<(), ()>, terminals: &[NodeId]) -> Vec<(EdgeId, u64)> {
        let (base, _) = connected_components(g);
        let mut out = Vec::new();
        for e in g.edge_ids() {
            let without = g.filter_edges(|er| er.id != e);
            let (labels, _) = connected_components(&without);
            // Count pairs the removal *newly* severs: connected before,
            // disconnected after.
            let mut severed = 0u64;
            for (i, &a) in terminals.iter().enumerate() {
                for &b in &terminals[i + 1..] {
                    if a != b
                        && base[a.index()] == base[b.index()]
                        && labels[a.index()] != labels[b.index()]
                    {
                        severed += 1;
                    }
                }
            }
            if severed > 0 {
                out.push((e, severed));
            }
        }
        out.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        out
    }

    #[test]
    fn criticality_matches_bruteforce_on_small_graphs() {
        // Several deterministic <=10-node graphs with varied structure:
        // chains, cycles with pendants, and disconnected pieces.
        let mut cases: Vec<(Graph<(), ()>, Vec<NodeId>)> = Vec::new();
        cases.push((path_graph(6), vec![NodeId::new(0), NodeId::new(5)]));
        cases.push((
            path_graph(6),
            vec![NodeId::new(0), NodeId::new(2), NodeId::new(5)],
        ));
        {
            // Cycle with two pendant chains hanging off it.
            let mut g = cycle_graph(4);
            let p1 = g.add_node(());
            let p2 = g.add_node(());
            let p3 = g.add_node(());
            g.add_edge(NodeId::new(0), p1, ());
            g.add_edge(p1, p2, ());
            g.add_edge(NodeId::new(2), p3, ());
            cases.push((g, vec![p2, p3, NodeId::new(1), NodeId::new(3)]));
        }
        {
            // Two components, terminals in both: cross-component pairs
            // are already severed and must not be attributed to edges.
            let mut g = path_graph(4);
            let a = g.add_node(());
            let b = g.add_node(());
            g.add_edge(a, b, ());
            cases.push((g, vec![NodeId::new(0), NodeId::new(3), a, b]));
        }
        {
            // Barbell: two triangles joined by one bridge.
            let mut g: Graph<(), ()> = Graph::new();
            let ids: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
            for (x, y) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
                g.add_edge(ids[x], ids[y], ());
            }
            g.add_edge(ids[2], ids[3], ());
            cases.push((g, ids));
        }
        for (g, terminals) in &cases {
            assert!(g.node_count() <= 10);
            let fast: Vec<(EdgeId, u64)> = criticality(g, terminals)
                .iter()
                .map(|c| (c.edge, c.severed_pairs))
                .collect();
            let brute = bruteforce_criticality(g, terminals);
            assert_eq!(fast, brute, "criticality mismatch on {terminals:?}");
        }
    }

    #[test]
    fn criticality_split_and_duplicates() {
        // Path 0-1-2-3 with terminals {0, 3, 3}: duplicate counted once.
        let g = path_graph(4);
        let report = criticality(&g, &[NodeId::new(0), NodeId::new(3), NodeId::new(3)]);
        assert_eq!(report.len(), 3);
        for c in &report {
            assert_eq!(c.severed_pairs, 1);
            assert_eq!(c.split, (1, 1));
        }
        // Fewer than two terminals: nothing to sever.
        assert!(criticality(&g, &[NodeId::new(0)]).is_empty());
        assert!(criticality(&g, &[]).is_empty());
    }

    #[test]
    fn bridges_agree_with_bruteforce_removal() {
        // Deterministic small graph; compare Tarjan against removal test.
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..7).map(|_| g.add_node(())).collect();
        let pairs = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 3),
            (5, 6),
        ];
        for (a, b) in pairs {
            g.add_edge(ids[a], ids[b], ());
        }
        let (_, base_components) = connected_components(&g);
        let mut expected = Vec::new();
        for e in g.edge_ids() {
            let without = g.filter_edges(|er| er.id != e);
            if connected_components(&without).1 > base_components {
                expected.push(e);
            }
        }
        let mut got = bridges(&g);
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }
}
