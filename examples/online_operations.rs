//! Operating the quantum internet: online entanglement sessions.
//!
//! Group requests arrive over time, hold switch qubits for their session
//! lifetime, and depart. Admission control routes each request over the
//! residual capacity; infeasible requests are blocked. This sweeps the
//! offered load and prints the blocking curve — the Erlang picture of a
//! MUERP-managed network.
//!
//! ```text
//! cargo run --example online_operations --release
//! ```

use muerp::core::extensions::{simulate_online, OnlineConfig};
use muerp::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::paper_default().build(52);
    println!(
        "Network: {} users, {} switches (Q = 4), {} fibers\n",
        net.user_count(),
        net.switch_count(),
        net.graph().edge_count()
    );

    const SLOTS: u64 = 20_000;
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "arrival", "arrived", "no-users", "capacity", "block %", "mean active", "session rate"
    );
    for arrival in [0.05, 0.1, 0.2, 0.4, 0.7, 1.0] {
        let cfg = OnlineConfig {
            arrival_prob: arrival,
            group_size: (2, 4),
            hold_slots: (10, 40),
        };
        let stats = simulate_online(&net, cfg, SLOTS, 7);
        println!(
            "{arrival:<10} {:>10} {:>10} {:>10} {:>9.1}% {:>12.2} {:>14.4e}",
            stats.arrived,
            stats.blocked_no_users,
            stats.blocked_capacity,
            stats.blocking_ratio() * 100.0,
            stats.mean_active_sessions,
            stats.mean_session_rate
        );
    }

    println!(
        "\nCapacity-driven blocking responds to switch memory (user
exhaustion does not):"
    );
    println!(
        "{:<10} {:>12} {:>12}",
        "qubits", "block @0.7", "mean active"
    );
    for qubits in [2u32, 4, 8, 16] {
        let granted = net.with_uniform_switch_qubits(qubits);
        let stats = simulate_online(
            &granted,
            OnlineConfig {
                arrival_prob: 0.7,
                group_size: (2, 4),
                hold_slots: (10, 40),
            },
            SLOTS,
            7,
        );
        println!(
            "{qubits:<10} {:>13} {:>12.2}",
            stats.blocked_capacity, stats.mean_active_sessions
        );
    }
    Ok(())
}
