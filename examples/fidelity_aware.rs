//! Fidelity-aware routing — the paper's first named extension.
//!
//! Rate is not the whole story: swapped pairs decohere, and a channel of
//! many links delivers low-fidelity entanglement. This example sweeps the
//! fidelity floor and shows the rate/fidelity trade-off: tighter floors
//! forbid long channels, shrinking (or zeroing) the achievable rate.
//!
//! ```text
//! cargo run --example fidelity_aware --release
//! ```

use muerp::core::extensions::{FidelityAwarePrim, FidelityModel, PurifiedPrim};
use muerp::core::prelude::*;
use muerp::sim::fidelity::chain_fidelity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::paper_default().build(31);
    let link_fidelity = 0.99;

    // Unconstrained reference (Algorithm 4).
    let free = PrimBased::default().solve(&net);
    match &free {
        Ok(sol) => {
            let worst = sol
                .channels
                .iter()
                .map(|c| chain_fidelity(link_fidelity, c.link_count()))
                .fold(1.0, f64::min);
            println!(
                "Unconstrained Alg-4: rate {}, worst channel fidelity {:.4}\n",
                sol.rate, worst
            );
        }
        Err(e) => println!("Unconstrained Alg-4 infeasible: {e}\n"),
    }

    println!(
        "{:<12} {:>10} {:>14} {:>16}",
        "floor", "max hops", "rate", "worst fidelity"
    );
    for floor in [0.90, 0.93, 0.95, 0.97, 0.985] {
        let model = FidelityModel {
            link_fidelity,
            min_fidelity: floor,
        };
        let hops = model.max_links();
        let outcome = FidelityAwarePrim { model }.solve(&net);
        match (&outcome, hops) {
            (Ok(sol), Some(h)) => {
                validate_solution(&net, sol)?;
                let worst = sol
                    .channels
                    .iter()
                    .map(|c| chain_fidelity(link_fidelity, c.link_count()))
                    .fold(1.0, f64::min);
                assert!(worst >= floor - 1e-12, "floor violated");
                println!(
                    "{floor:<12} {h:>10} {:>14} {worst:>16.4}",
                    sol.rate.to_string()
                );
            }
            (Err(e), _) => println!(
                "{floor:<12} {:>10} {:>14} ({e})",
                hops.map_or(0, |h| h),
                "0"
            ),
            (Ok(_), None) => unreachable!("a solution implies a positive hop bound"),
        }
    }

    println!("\nTighter fidelity floors trade entanglement rate for pair quality.");

    // Purification unlocks floors the hop bound cannot reach: distill
    // 2^k raw pairs per channel instead of banning long channels.
    println!("\nHop bound vs BBPSSW purification at extreme floors:");
    println!(
        "{:<12} {:>16} {:>16}",
        "floor", "hop-bound rate", "purified rate"
    );
    for floor in [0.975, 0.982, 0.985] {
        let model = FidelityModel {
            link_fidelity,
            min_fidelity: floor,
        };
        let hop = FidelityAwarePrim { model }
            .solve(&net)
            .map(|s| s.rate.to_string())
            .unwrap_or_else(|_| "infeasible".into());
        let purified = PurifiedPrim { model }
            .solve(&net)
            .map(|s| s.rate.to_string())
            .unwrap_or_else(|_| "infeasible".into());
        println!("{floor:<12} {hop:>16} {purified:>16}");
    }
    println!("\nPurification keeps tight floors feasible at an exponential rate cost.");
    Ok(())
}
