//! Monte-Carlo validation: execute a routed solution on the simulated
//! physical layer and check the measured success rate against Eq. 2.
//!
//! The paper's evaluation trusts the analytic rate; here we *earn* that
//! trust by running the actual protocol — heralded link generation, BSMs
//! at every interior switch, GHZ fusion for the N-FUSION baseline — and
//! comparing slot statistics with the formula.
//!
//! ```text
//! cargo run --example montecarlo_validation --release
//! ```

use muerp::bridge::{physics_of, solution_to_plan};
use muerp::core::prelude::*;
use muerp::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::paper_default().build(99);
    let physics = physics_of(&net);
    const SLOTS: u64 = 200_000;

    println!("Validating analytic rates with {SLOTS} simulated time slots each:\n");
    println!(
        "{:<10} {:>14} {:>14} {:>24} {:>8}",
        "algorithm", "analytic", "measured", "99.99% Wilson interval", "verdict"
    );

    let solutions: Vec<(&str, Result<Solution, RoutingError>)> = vec![
        ("Alg-3", ConflictFree::default().solve(&net)),
        ("Alg-4", PrimBased::with_seed(99).solve(&net)),
        ("N-Fusion", NFusion::default().solve(&net)),
        ("E-Q-CAST", EQCast.solve(&net)),
    ];

    for (name, outcome) in solutions {
        let Ok(sol) = outcome else {
            println!("{name:<10} infeasible on this instance");
            continue;
        };
        let plan = solution_to_plan(&net, &sol);
        let mut sim = Simulator::new(plan, physics, 4242);
        let analytic = sim.analytic_rate();
        let stats = sim.run_slots(SLOTS);
        let est = stats.estimate();
        let iv = est.wilson_interval(3.9); // ≈ 99.99%
        let ok = iv.contains(analytic);
        println!(
            "{name:<10} {analytic:>14.6e} {:>14.6e} [{:.5e}, {:.5e}] {:>8}",
            est.point(),
            iv.lo,
            iv.hi,
            if ok { "OK" } else { "MISMATCH" }
        );
        assert!(ok, "{name}: Monte-Carlo rejects the analytic rate");
    }

    println!("\nAll measured rates are statistically consistent with Eq. 2.");
    Ok(())
}
