//! What does the paper's synchronized-slot assumption cost?
//!
//! Eq. 1 assumes every link of a channel must succeed in the *same* time
//! slot. Quantum memories allow buffering: a heralded pair can wait a few
//! slots for its siblings (the asynchronous generation idea of the
//! paper's ref. [14]). This example sweeps the memory cutoff on a routed
//! channel from the default network and prints the measured per-slot
//! entanglement rate, plus a protocol trace of one failing slot.
//!
//! ```text
//! cargo run --example buffered_protocol --release
//! ```

use muerp::bridge::{physics_of, solution_to_plan};
use muerp::core::prelude::*;
use muerp::sim::buffered::BufferedChannel;
use muerp::sim::trace::Recorder;
use muerp::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = NetworkSpec::paper_default().build(15);
    let sol = PrimBased::default().solve(&net)?;

    // Take the *longest* channel of the routed tree — buffering matters
    // most where many links must align.
    let channel = sol
        .channels
        .iter()
        .max_by_key(|c| c.link_count())
        .expect("tree has channels");
    let lengths: Vec<f64> = channel.path.edges.iter().map(|e| net.length(*e)).collect();
    println!(
        "Longest routed channel: {} links, fiber lengths {:?} km",
        channel.link_count(),
        lengths.iter().map(|l| l.round()).collect::<Vec<_>>()
    );
    let q = net.physics().swap_success;
    let alpha = net.physics().attenuation;

    println!("\n{:<10} {:>14} {:>12}", "cutoff", "rate/slot", "vs sync");
    let sync = BufferedChannel::new(lengths.clone(), q, alpha, 0)
        .run(150_000, 77)
        .point();
    for cutoff in [0u32, 1, 2, 4, 8, 16] {
        let c = BufferedChannel::new(lengths.clone(), q, alpha, cutoff);
        let rate = c.run(150_000, 77).point();
        println!(
            "{cutoff:<10} {rate:>14.6} {:>11.2}x",
            rate / sync.max(1e-12)
        );
        if cutoff == 0 {
            let analytic = c.synchronized_rate();
            println!(
                "{:<10} {analytic:>14.6} (analytic Eq. 1 — matches the measured sync rate)",
                ""
            );
        }
    }

    // Show why a synchronized slot fails: trace one unlucky slot.
    println!("\nProtocol trace of the first failing slot (full tree):");
    let plan = solution_to_plan(&net, &sol);
    let mut sim = Simulator::new(plan, physics_of(&net), 123);
    for slot in 0.. {
        let mut rec = Recorder::new();
        let ok = sim.run_slot_observed(&mut |e| rec.events.push(e));
        if !ok {
            println!(
                "  slot {slot}: {} events, first failure: {:?}",
                rec.len(),
                rec.first_failure()
            );
            break;
        }
    }
    Ok(())
}
