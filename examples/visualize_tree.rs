//! Export a routed entanglement tree as Graphviz DOT.
//!
//! Renders the quantum network with users as boxes, switches as circles,
//! fibers as gray edges, and the Alg-3 entanglement tree's channels
//! highlighted in bold — pipe the output through `dot -Tsvg` to see the
//! routing.
//!
//! ```text
//! cargo run --example visualize_tree --release > tree.dot
//! dot -Tsvg tree.dot -o tree.svg   # if graphviz is installed
//! ```

use std::collections::HashSet;

use muerp::core::prelude::*;
use muerp::graph::dot::{to_dot, DotOptions};
use muerp::graph::EdgeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = NetworkSpec::paper_default();
    spec.topology.nodes = 30; // smaller network renders legibly
    spec.users = 6;
    let net = spec.build(8);

    let solution = ConflictFree::default().solve(&net)?;
    validate_solution(&net, &solution)?;

    let tree_edges: HashSet<EdgeId> = solution
        .channels
        .iter()
        .flat_map(|c| c.path.edges.iter().copied())
        .collect();
    let users: HashSet<_> = net.users().iter().copied().collect();

    let dot = to_dot(
        net.graph(),
        &DotOptions {
            name: "entanglement_tree",
            node_label: Box::new(move |n, kind| {
                if users.contains(&n) {
                    format!("user {n}")
                } else {
                    format!("{n} Q={}", kind.qubits())
                }
            }),
            node_attrs: Box::new({
                let users: HashSet<_> = net.users().iter().copied().collect();
                move |n, _| {
                    if users.contains(&n) {
                        "shape=box, style=filled, fillcolor=lightblue".into()
                    } else {
                        "shape=circle".into()
                    }
                }
            }),
            edge_label: Box::new(|e| format!("{:.0}", e.payload)),
            edge_attrs: Box::new(move |e| {
                if tree_edges.contains(&e.id) {
                    "penwidth=3, color=black".into()
                } else {
                    "color=gray70".into()
                }
            }),
        },
    );
    print!("{dot}");
    eprintln!(
        "// tree rate {} over {} channels — pipe me through `dot -Tsvg`",
        solution.rate,
        solution.channels.len()
    );
    Ok(())
}
