//! MUERP over a real backbone shape: the NSFNET T1 topology.
//!
//! The paper evaluates on synthetic random graphs; here the same
//! algorithms route multi-user entanglement over the (approximate)
//! historical NSFNET backbone — every site is both a quantum switch
//! candidate and a potential user, fiber lengths come from geography.
//! Five east+west-coast sites want a shared entangled state.
//!
//! ```text
//! cargo run --example nsfnet_backbone --release
//! ```

use muerp::core::algorithms::{refine, LocalSearchOptions};
use muerp::core::analysis::solution_stats;
use muerp::core::prelude::*;
use muerp::graph::NodeId;
use muerp::topology::reference::{nsfnet, nsfnet_name};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let backbone = nsfnet();
    println!(
        "NSFNET backbone: {} sites, {} fiber links, avg degree {:.1}\n",
        backbone.node_count(),
        backbone.edge_count(),
        backbone.average_degree()
    );

    // Users: Seattle, Palo Alto, Houston, Ithaca, Atlanta.
    let users: Vec<NodeId> = [0usize, 1, 7, 10, 13].map(NodeId::new).to_vec();
    println!("Entangling:");
    for &u in &users {
        println!("  - {}", nsfnet_name(u));
    }

    for qubits in [2u32, 4, 10] {
        let net = QuantumNetwork::from_spatial(
            &backbone,
            &users,
            qubits,
            muerp::core::model::PhysicsParams::paper_default(),
        );
        println!("\n== {qubits} qubits per switch ==");
        for (name, outcome) in [
            ("Alg-3", ConflictFree::default().solve(&net)),
            ("Alg-4", PrimBased::default().solve(&net)),
            ("N-Fusion", NFusion::default().solve(&net)),
            ("E-Q-CAST", EQCast.solve(&net)),
        ] {
            match outcome {
                Ok(sol) => {
                    validate_solution(&net, &sol)?;
                    let refined = refine(&net, sol.clone(), LocalSearchOptions::default());
                    let stats = solution_stats(&net, &refined);
                    print!("{name:<10} rate {:<12}", refined.rate.to_string());
                    if refined.rate > sol.rate {
                        print!(
                            " (local search +{:.1}%)",
                            (refined.rate.ratio(sol.rate) - 1.0) * 100.0
                        );
                    }
                    if let Some((hot, load)) = stats.hottest_switch {
                        print!("  hottest switch: {} ({load} qubits)", nsfnet_name(hot));
                    }
                    println!();
                }
                Err(e) => println!("{name:<10} rate 0 ({e})"),
            }
        }
    }

    println!("\nAt 2 qubits per switch the backbone is tight: watch channels detour");
    println!("and baselines fail; at 10 qubits everything routes freely.");
    Ok(())
}
