//! Network resilience: the Fig. 7(b) edge-removal experiment as a
//! narrative, plus the "critical edge" (bridge) analysis the paper's
//! discussion points at.
//!
//! The paper observes that (1) the rate usually falls as fibers are
//! removed, (2) it stays *flat* while no "critical" edge is hit, and
//! (3) it can even improve when a removal steers the greedy heuristics
//! away from a locally attractive but globally poor channel.
//!
//! ```text
//! cargo run --example network_resilience --release
//! ```

use muerp::core::prelude::*;
use muerp::graph::centrality::betweenness;
use muerp::graph::connectivity::bridges;
use muerp::graph::EdgeRef;
use muerp::topology::SpatialGraph;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 600-fiber network: 10 users + 50 switches, average degree 20.
    let mut spec = NetworkSpec::paper_default();
    spec.topology.avg_degree = 20.0;
    let spatial = spec.topology.generate(5);
    println!(
        "Start: {} nodes, {} fibers, {} of them bridges (critical edges)\n",
        spatial.node_count(),
        spatial.edge_count(),
        bridges(&spatial).len()
    );

    // The node-side "critical" picture: which nodes carry the most
    // cheapest routes (and will run out of qubits first)?
    let central = betweenness(&spatial, |e: EdgeRef<'_, f64>| *e.payload);
    let mut ranked: Vec<(usize, f64)> = central.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("Highest-betweenness nodes (capacity pressure points):");
    for (node, score) in ranked.iter().take(3) {
        println!("  n{node}: {score:.4}");
    }
    println!();

    let mut order: Vec<usize> = (0..spatial.edge_count()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    order.shuffle(&mut rng);

    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>10}",
        "removed", "ratio", "Alg-3 rate", "Alg-4 rate", "bridges"
    );

    let mut last_a3 = f64::NAN;
    for step in 0..20 {
        let removed: std::collections::HashSet<usize> =
            order[..step * 30].iter().copied().collect();
        let pruned: SpatialGraph = spatial.filter_edges(|e| !removed.contains(&e.id.index()));
        let net = spec.build_from_spatial(&pruned, 5);

        let rate = |r: Result<Solution, RoutingError>| r.map_or(0.0, |s| s.rate.value());
        let a3 = rate(ConflictFree::default().solve(&net));
        let a4 = rate(PrimBased::with_seed(5).solve(&net));
        let n_bridges = bridges(&pruned).len();

        let note = if a3 == last_a3 {
            " (flat: no critical edge hit)"
        } else if a3 > last_a3 {
            " (improved: removal redirected the heuristic)"
        } else {
            ""
        };
        println!(
            "{:<10} {:>8.2} {:>14.4e} {:>14.4e} {:>10}{note}",
            step * 30,
            (step * 30) as f64 / 600.0,
            a3,
            a4,
            n_bridges
        );
        last_a3 = a3;
        if a3 == 0.0 && a4 == 0.0 {
            println!("\nNo feasible entanglement tree remains — stopping.");
            break;
        }
    }
    Ok(())
}
