//! Quickstart: build the paper's default quantum internet and compare all
//! five routing algorithms on it.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use muerp::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §V-A default: 50 switches + 10 users placed in a
    // 10 000 × 10 000 km area, Waxman wiring with average degree 6,
    // 4 qubits per switch, q = 0.9, α = 1e-4.
    let spec = NetworkSpec::paper_default();
    let net = spec.build(2024);

    println!(
        "Network: {} users, {} switches, {} fibers (avg degree {:.1})",
        net.user_count(),
        net.switch_count(),
        net.graph().edge_count(),
        net.graph().average_degree()
    );
    println!(
        "Physics: q = {}, α = {:e}\n",
        net.physics().swap_success,
        net.physics().attenuation
    );

    // Algorithm 2 runs on a capacity-granted copy (Q = 2·|U|), exactly as
    // the paper's evaluation protocol prescribes.
    let granted = net.with_uniform_switch_qubits(2 * net.user_count() as u32);

    let report =
        |name: &str, outcome: Result<Solution, RoutingError>, net: &QuantumNetwork| match outcome {
            Ok(sol) => {
                validate_solution(net, &sol).expect("algorithms emit valid solutions");
                let longest = sol
                    .channels
                    .iter()
                    .map(|c| c.link_count())
                    .max()
                    .unwrap_or(0);
                println!(
                    "{name:<10} rate = {:<12} channels = {} (longest {longest} links)",
                    sol.rate.to_string(),
                    sol.channels.len(),
                );
            }
            Err(e) => println!("{name:<10} rate = 0 ({e})"),
        };

    report("Alg-2", OptimalSufficient.solve(&granted), &granted);
    report("Alg-3", ConflictFree::default().solve(&net), &net);
    report("Alg-4", PrimBased::with_seed(2024).solve(&net), &net);
    report("N-Fusion", NFusion::default().solve(&net), &net);
    report("E-Q-CAST", EQCast.solve(&net), &net);

    // Show one concrete entanglement tree.
    if let Ok(sol) = ConflictFree::default().solve(&net) {
        println!("\nAlg-3 entanglement tree:");
        for c in &sol.channels {
            let hops: Vec<String> = c.path.nodes.iter().map(|n| n.to_string()).collect();
            println!(
                "  {} ↔ {}  via [{}]  rate {}",
                c.source(),
                c.destination(),
                hops.join(" - "),
                c.rate
            );
        }
        println!("  tree rate (Eq. 2): {}", sol.rate);
    }
    Ok(())
}
