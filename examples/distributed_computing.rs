//! Distributed quantum computing — the paper's §I motivating application.
//!
//! A single quantum processor tops out around a hundred qubits; jobs that
//! need more must entangle a *cluster* of processors over the quantum
//! internet. This example scales the cluster size and watches the
//! entanglement rate fall (Fig. 6(a)'s phenomenon), then runs two
//! independent computing jobs concurrently with the multi-group
//! extension and shows how scheduling strategy shifts rate between them.
//!
//! ```text
//! cargo run --example distributed_computing --release
//! ```

use muerp::core::extensions::{route_groups, GroupStrategy};
use muerp::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Scaling a distributed quantum computing cluster ==\n");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "cluster", "Alg-3 rate", "Alg-4 rate", "channels"
    );

    for cluster_size in [3usize, 5, 8, 12, 16] {
        let mut spec = NetworkSpec::paper_default();
        spec.topology.nodes = 50 + cluster_size;
        spec.users = cluster_size;
        let net = spec.build(7);

        let a3 = ConflictFree::default().solve(&net);
        let a4 = PrimBased::with_seed(7).solve(&net);
        let fmt = |r: &Result<Solution, RoutingError>| match r {
            Ok(s) => format!("{}", s.rate),
            Err(_) => "0 (infeasible)".to_string(),
        };
        println!(
            "{:<10} {:>14} {:>14} {:>10}",
            cluster_size,
            fmt(&a3),
            fmt(&a4),
            a3.as_ref().map(|s| s.channels.len()).unwrap_or(0)
        );
    }

    println!("\n== Two computing jobs sharing the network ==\n");
    let mut spec = NetworkSpec::paper_default();
    spec.topology.nodes = 62;
    spec.users = 12;
    let net = spec.build(11);
    let users = net.users();
    let job_a = users[..6].to_vec();
    let job_b = users[6..].to_vec();

    for strategy in [GroupStrategy::Sequential, GroupStrategy::RoundRobin] {
        let outcomes = route_groups(&net, &[job_a.clone(), job_b.clone()], strategy);
        println!("{strategy:?}:");
        for (label, o) in ["job A", "job B"].iter().zip(&outcomes) {
            match &o.tree {
                Ok(t) => println!(
                    "  {label}: rate {} ({} channels)",
                    t.rate(),
                    t.channels.len()
                ),
                Err(e) => println!("  {label}: starved ({e})"),
            }
        }
    }

    println!("\nSequential favors the first job; RoundRobin splits capacity more evenly.");
    Ok(())
}
